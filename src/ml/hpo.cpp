#include "ml/hpo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sickle::ml {

HpoReport tune(const HpoObjective& objective, const HpoConfig& cfg) {
  SICKLE_CHECK_MSG(cfg.num_candidates >= 1, "need at least one candidate");
  SICKLE_CHECK_MSG(!cfg.lr_choices.empty() && !cfg.hidden_choices.empty() &&
                       !cfg.layer_choices.empty(),
                   "empty search space");
  Rng rng(cfg.seed, /*stream=*/0x490);

  std::vector<HpoCandidate> pool;
  pool.reserve(cfg.num_candidates);
  for (std::size_t i = 0; i < cfg.num_candidates; ++i) {
    HpoCandidate c;
    c.lr = cfg.lr_choices[rng.uniform_int(cfg.lr_choices.size())];
    c.hidden = cfg.hidden_choices[rng.uniform_int(cfg.hidden_choices.size())];
    c.layers = cfg.layer_choices[rng.uniform_int(cfg.layer_choices.size())];
    pool.push_back(c);
  }

  HpoReport report;
  std::size_t epochs = cfg.initial_epochs;
  for (std::size_t rung = 0; rung < cfg.rungs && !pool.empty(); ++rung) {
    for (auto& c : pool) {
      c.loss = objective(c, epochs);
      c.epochs = epochs;
      report.history.push_back(c);
      report.total_epochs += epochs;
    }
    std::sort(pool.begin(), pool.end(),
              [](const HpoCandidate& a, const HpoCandidate& b) {
                return a.loss < b.loss;
              });
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.keep_fraction *
                                    static_cast<double>(pool.size())));
    pool.resize(keep);
    epochs *= 2;
  }
  report.best = pool.front();
  return report;
}

}  // namespace sickle::ml
