#include "ml/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace sickle::ml {

namespace {
std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SICKLE_CHECK_MSG(data_.size() == shape_size(shape_),
                   "tensor data does not match shape");
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  SICKLE_CHECK_MSG(shape_size(shape) == size(),
                   "reshape changes element count");
  return Tensor(std::move(shape), data_);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data()) {
    x = static_cast<float>(rng.normal()) * stddev;
  }
  return t;
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
            bool accumulate) {
  SICKLE_CHECK(a.size() >= m * k && b.size() >= k * n && c.size() >= m * n);
  if (!accumulate) std::fill(c.begin(), c.begin() + m * n, 0.0f);
  // ikj loop order: unit-stride inner loop over both B and C.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* brow = b.data() + p * n;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void matmul_bt(std::span<const float> a, std::span<const float> b,
               std::span<float> c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) {
  SICKLE_CHECK(a.size() >= m * k && b.size() >= n * k && c.size() >= m * n);
  if (!accumulate) std::fill(c.begin(), c.begin() + m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

void matmul_at(std::span<const float> a, std::span<const float> b,
               std::span<float> c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate) {
  SICKLE_CHECK(a.size() >= k * m && b.size() >= k * n && c.size() >= m * n);
  if (!accumulate) std::fill(c.begin(), c.begin() + m * n, 0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float api = arow[i];
      if (api == 0.0f) continue;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

}  // namespace sickle::ml
