// Loss functions.
#pragma once

#include "ml/tensor.hpp"

namespace sickle::ml {

/// Mean squared error; grad is dLoss/dPred (mean reduction).
struct LossResult {
  double value = 0.0;
  Tensor grad;
};

[[nodiscard]] LossResult mse_loss(const Tensor& pred, const Tensor& target);
[[nodiscard]] LossResult mae_loss(const Tensor& pred, const Tensor& target);

/// Relative L2 error  ||pred - target|| / ||target||  (evaluation metric).
[[nodiscard]] double relative_l2(const Tensor& pred, const Tensor& target);

}  // namespace sickle::ml
