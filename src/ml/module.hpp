// Module interface: explicit-backprop neural network layers.
//
// Every layer owns its parameters (value + gradient pairs), caches what it
// needs during forward(), and implements backward() returning the gradient
// with respect to its input while accumulating parameter gradients.
// Training mode toggles dropout-style stochastic behaviour.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace sickle::ml {

/// A learnable parameter: value and accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(Tensor::zeros(value.shape())) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass; caches activations needed by backward.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass for the most recent forward() call. Accumulates into
  /// parameter gradients and returns dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters of this module (recursively for containers).
  virtual std::vector<Param*> parameters() { return {}; }

  /// Approximate FLOPs of one forward+backward for the most recent input
  /// (energy accounting; 0 for cheap elementwise layers is acceptable).
  [[nodiscard]] virtual double flops() const { return 0.0; }

  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t num_parameters() {
    std::size_t n = 0;
    for (const Param* p : parameters()) n += p->value.size();
    return n;
  }

  void zero_grad() {
    for (Param* p : parameters()) p->grad.zero();
  }

 protected:
  bool training_ = true;
};

}  // namespace sickle::ml
