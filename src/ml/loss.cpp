#include "ml/loss.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sickle::ml {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  SICKLE_CHECK_MSG(pred.size() == target.size(), "loss size mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += d * d;
    out.grad[i] = static_cast<float>(2.0 * d * inv_n);
  }
  out.value = acc * inv_n;
  return out;
}

LossResult mae_loss(const Tensor& pred, const Tensor& target) {
  SICKLE_CHECK_MSG(pred.size() == target.size(), "loss size mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += std::abs(d);
    out.grad[i] = static_cast<float>((d > 0.0 ? 1.0 : d < 0.0 ? -1.0 : 0.0) *
                                     inv_n);
  }
  out.value = acc * inv_n;
  return out;
}

double relative_l2(const Tensor& pred, const Tensor& target) {
  SICKLE_CHECK_MSG(pred.size() == target.size(), "metric size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    num += d * d;
    den += static_cast<double>(target[i]) * target[i];
  }
  return std::sqrt(num / std::max(den, 1e-300));
}

}  // namespace sickle::ml
