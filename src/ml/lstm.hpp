// LSTM layer (batch-first, full-sequence output) with BPTT backward.
//
// Used by the paper's sample-single architecture: "two LSTM layers, three
// dense layers" predicting a scalar (drag) over a time horizon.
#pragma once

#include "ml/module.hpp"

namespace sickle::ml {

/// Input [B, T, C] -> output [B, T, H]. Gates follow the standard
/// formulation (i, f, g, o) with sigmoid/tanh nonlinearities and zero
/// initial state. Weight layout: w_x [4H, C], w_h [4H, H], bias [4H] with
/// gate order i|f|g|o and PyTorch's forget-bias-zero default.
class Lstm final : public Module {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  [[nodiscard]] std::string name() const override { return "Lstm"; }

  [[nodiscard]] std::size_t hidden_size() const noexcept { return hidden_; }
  [[nodiscard]] std::size_t input_size() const noexcept { return input_; }

  // Read-only weight access for checkpoint converters (infer::compile).
  [[nodiscard]] const Tensor& w_x() const noexcept { return w_x_.value; }
  [[nodiscard]] const Tensor& w_h() const noexcept { return w_h_.value; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_.value; }

 private:
  std::size_t input_, hidden_;
  Param w_x_, w_h_, bias_;

  // Caches for BPTT (shapes noted per entry).
  Tensor cached_input_;              // [B, T, C]
  std::vector<Tensor> gates_;        // per t: [B, 4H] post-activation
  std::vector<Tensor> cells_;        // per t: [B, H] cell state c_t
  std::vector<Tensor> hiddens_;      // per t: [B, H] hidden h_t
  std::size_t batch_ = 0, steps_ = 0;
};

}  // namespace sickle::ml
