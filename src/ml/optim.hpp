// Optimizers and LR scheduling.
//
// The paper trains with Adam (lr = 0.001) plus ReduceLROnPlateau
// (patience = 20); both are reproduced here, along with plain SGD for
// tests. Precision emulation (fp16/bf16 weight rounding after each step)
// implements the paper's --precision flag without mixed-precision
// hardware.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/module.hpp"

namespace sickle::ml {

/// Weight storage precision emulation.
enum class Precision { kFp32, kFp16, kBf16 };

/// Round a float to the nearest value representable at `precision`.
[[nodiscard]] float quantize(float x, Precision precision) noexcept;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params, double lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (Param* p : params_) p->grad.zero();
  }

  [[nodiscard]] double lr() const noexcept { return lr_; }
  void set_lr(double lr) noexcept { lr_ = lr; }
  void set_precision(Precision p) noexcept { precision_ = p; }

 protected:
  void quantize_params();

  std::vector<Param*> params_;
  double lr_;
  Precision precision_ = Precision::kFp32;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;

 private:
  double beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Reduce LR by `factor` after `patience` epochs without improvement.
class ReduceLROnPlateau {
 public:
  ReduceLROnPlateau(Optimizer& opt, double factor = 0.5,
                    std::size_t patience = 20, double min_lr = 1e-6);

  /// Call once per epoch with the monitored loss; returns true if the LR
  /// was reduced this call.
  bool step(double loss);

  [[nodiscard]] double best() const noexcept { return best_; }

 private:
  Optimizer& opt_;
  double factor_;
  std::size_t patience_;
  double min_lr_;
  double best_ = 1e30;
  std::size_t bad_epochs_ = 0;
};

}  // namespace sickle::ml
