#include "ml/lstm.hpp"

#include <algorithm>
#include <cmath>

namespace sickle::ml {

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      w_x_("w_x", Tensor::randn({4 * hidden_size, input_size}, rng,
                                static_cast<float>(std::sqrt(
                                    1.0 / static_cast<double>(input_size))))),
      w_h_("w_h", Tensor::randn({4 * hidden_size, hidden_size}, rng,
                                static_cast<float>(std::sqrt(
                                    1.0 / static_cast<double>(hidden_size))))),
      bias_("bias", Tensor::zeros({4 * hidden_size})) {}

Tensor Lstm::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 3, "LSTM expects [B, T, C]");
  SICKLE_CHECK(input.dim(2) == input_);
  batch_ = input.dim(0);
  steps_ = input.dim(1);
  cached_input_ = input;
  gates_.assign(steps_, Tensor({batch_, 4 * hidden_}));
  cells_.assign(steps_, Tensor({batch_, hidden_}));
  hiddens_.assign(steps_, Tensor({batch_, hidden_}));

  Tensor out({batch_, steps_, hidden_});
  Tensor h_prev({batch_, hidden_});
  Tensor c_prev({batch_, hidden_});
  Tensor x_t({batch_, input_});
  const std::size_t H = hidden_;

  for (std::size_t t = 0; t < steps_; ++t) {
    // Slice x_t = input[:, t, :].
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* src = input.raw() + (b * steps_ + t) * input_;
      std::copy_n(src, input_, x_t.raw() + b * input_);
    }
    Tensor& gates = gates_[t];
    // pre-activation: x W_x^T + h W_h^T + b
    matmul_bt(x_t.data(), w_x_.value.data(), gates.data(), batch_, input_,
              4 * H);
    matmul_bt(h_prev.data(), w_h_.value.data(), gates.data(), batch_, H,
              4 * H, /*accumulate=*/true);
    for (std::size_t b = 0; b < batch_; ++b) {
      float* g = gates.raw() + b * 4 * H;
      const float* cp = c_prev.raw() + b * H;
      float* c = cells_[t].raw() + b * H;
      float* h = hiddens_[t].raw() + b * H;
      for (std::size_t j = 0; j < 4 * H; ++j) g[j] += bias_.value[j];
      for (std::size_t j = 0; j < H; ++j) {
        const float i_g = sigmoidf(g[j]);
        const float f_g = sigmoidf(g[H + j]);
        const float g_g = std::tanh(g[2 * H + j]);
        const float o_g = sigmoidf(g[3 * H + j]);
        // Store post-activation gates for backward.
        g[j] = i_g;
        g[H + j] = f_g;
        g[2 * H + j] = g_g;
        g[3 * H + j] = o_g;
        c[j] = f_g * cp[j] + i_g * g_g;
        h[j] = o_g * std::tanh(c[j]);
      }
      std::copy_n(h, H, out.raw() + (b * steps_ + t) * H);
    }
    h_prev = hiddens_[t];
    c_prev = cells_[t];
  }
  return out;
}

Tensor Lstm::backward(const Tensor& grad_output) {
  SICKLE_CHECK(grad_output.rank() == 3 && grad_output.dim(0) == batch_ &&
               grad_output.dim(1) == steps_ && grad_output.dim(2) == hidden_);
  const std::size_t H = hidden_;
  Tensor grad_in({batch_, steps_, input_});
  Tensor dh_next({batch_, H});
  Tensor dc_next({batch_, H});
  Tensor dgates({batch_, 4 * H});
  Tensor x_t({batch_, input_});

  for (std::size_t t = steps_; t-- > 0;) {
    const Tensor& gates = gates_[t];
    const Tensor& c_t = cells_[t];
    const Tensor* c_prev = (t > 0) ? &cells_[t - 1] : nullptr;
    const Tensor* h_prev = (t > 0) ? &hiddens_[t - 1] : nullptr;

    for (std::size_t b = 0; b < batch_; ++b) {
      const float* g = gates.raw() + b * 4 * H;
      const float* c = c_t.raw() + b * H;
      const float* go = grad_output.raw() + (b * steps_ + t) * H;
      float* dh = dh_next.raw() + b * H;
      float* dc = dc_next.raw() + b * H;
      float* dg = dgates.raw() + b * 4 * H;
      for (std::size_t j = 0; j < H; ++j) {
        const float i_g = g[j], f_g = g[H + j], g_g = g[2 * H + j],
                    o_g = g[3 * H + j];
        const float tanh_c = std::tanh(c[j]);
        const float dh_total = dh[j] + go[j];
        const float dc_total =
            dc[j] + dh_total * o_g * (1.0f - tanh_c * tanh_c);
        const float cp = (c_prev != nullptr) ? c_prev->raw()[b * H + j] : 0.0f;
        // Gate pre-activation gradients.
        dg[j] = dc_total * g_g * i_g * (1.0f - i_g);              // i
        dg[H + j] = dc_total * cp * f_g * (1.0f - f_g);           // f
        dg[2 * H + j] = dc_total * i_g * (1.0f - g_g * g_g);      // g
        dg[3 * H + j] = dh_total * tanh_c * o_g * (1.0f - o_g);   // o
        // Carry to t-1.
        dc[j] = dc_total * f_g;
      }
    }

    // Parameter gradients: dW_x += dgates^T x_t; dW_h += dgates^T h_prev.
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* src = cached_input_.raw() + (b * steps_ + t) * input_;
      std::copy_n(src, input_, x_t.raw() + b * input_);
    }
    matmul_at(dgates.data(), x_t.data(), w_x_.grad.data(), 4 * H, batch_,
              input_, /*accumulate=*/true);
    if (h_prev != nullptr) {
      matmul_at(dgates.data(), h_prev->data(), w_h_.grad.data(), 4 * H,
                batch_, H, /*accumulate=*/true);
    }
    for (std::size_t b = 0; b < batch_; ++b) {
      const float* dg = dgates.raw() + b * 4 * H;
      for (std::size_t j = 0; j < 4 * H; ++j) bias_.grad[j] += dg[j];
    }

    // Input gradient: dx_t = dgates * W_x; dh_prev = dgates * W_h.
    Tensor dx({batch_, input_});
    matmul(dgates.data(), w_x_.value.data(), dx.data(), batch_, 4 * H,
           input_);
    for (std::size_t b = 0; b < batch_; ++b) {
      std::copy_n(dx.raw() + b * input_, input_,
                  grad_in.raw() + (b * steps_ + t) * input_);
    }
    Tensor dh_prev_t({batch_, H});
    matmul(dgates.data(), w_h_.value.data(), dh_prev_t.data(), batch_, 4 * H,
           H);
    dh_next = std::move(dh_prev_t);
  }
  return grad_in;
}

std::vector<Param*> Lstm::parameters() { return {&w_x_, &w_h_, &bias_}; }

double Lstm::flops() const {
  const double per_step =
      matmul_flops(batch_, input_, 4 * hidden_) +
      matmul_flops(batch_, hidden_, 4 * hidden_);
  return 3.0 * per_step * static_cast<double>(steps_);
}

}  // namespace sickle::ml
