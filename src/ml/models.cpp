#include "ml/models.hpp"

#include <algorithm>
#include <cmath>

namespace sickle::ml {

// ---------------------------------------------------------------- LstmModel

LstmModel::LstmModel(const LstmModelConfig& cfg, Rng& rng)
    : cfg_(cfg),
      lstm1_(cfg.in_channels, cfg.hidden, rng),
      lstm2_(cfg.hidden, cfg.hidden, rng) {
  const std::size_t h = cfg.hidden;
  head_.push(std::make_unique<Dense>(h, h, rng));
  head_.push(std::make_unique<ActivationLayer>(Activation::kRelu));
  head_.push(std::make_unique<Dense>(h, h / 2, rng));
  head_.push(std::make_unique<ActivationLayer>(Activation::kRelu));
  head_.push(
      std::make_unique<Dense>(h / 2, cfg.horizon * cfg.out_channels, rng));
}

Tensor LstmModel::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 3, "LstmModel expects [B, T, C]");
  batch_ = input.dim(0);
  steps_ = input.dim(1);
  const Tensor h2 = lstm2_.forward(lstm1_.forward(input));
  // Last timestep hidden state.
  Tensor last({batch_, cfg_.hidden});
  for (std::size_t b = 0; b < batch_; ++b) {
    std::copy_n(h2.raw() + (b * steps_ + steps_ - 1) * cfg_.hidden,
                cfg_.hidden, last.raw() + b * cfg_.hidden);
  }
  Tensor out = head_.forward(last);
  return out.reshaped({batch_, cfg_.horizon, cfg_.out_channels});
}

Tensor LstmModel::backward(const Tensor& grad_output) {
  const Tensor flat = grad_output.reshaped(
      {batch_, cfg_.horizon * cfg_.out_channels});
  const Tensor d_last = head_.backward(flat);
  Tensor d_h2({batch_, steps_, cfg_.hidden});
  for (std::size_t b = 0; b < batch_; ++b) {
    std::copy_n(d_last.raw() + b * cfg_.hidden, cfg_.hidden,
                d_h2.raw() + (b * steps_ + steps_ - 1) * cfg_.hidden);
  }
  return lstm1_.backward(lstm2_.backward(d_h2));
}

std::vector<Param*> LstmModel::parameters() {
  std::vector<Param*> out = lstm1_.parameters();
  const auto p2 = lstm2_.parameters();
  out.insert(out.end(), p2.begin(), p2.end());
  const auto ph = head_.parameters();
  out.insert(out.end(), ph.begin(), ph.end());
  return out;
}

double LstmModel::flops() const {
  return lstm1_.flops() + lstm2_.flops() + head_.flops();
}

void LstmModel::set_training(bool training) {
  Module::set_training(training);
  lstm1_.set_training(training);
  lstm2_.set_training(training);
  head_.set_training(training);
}

// --------------------------------------------------------------- GridDecoder

namespace {
constexpr std::size_t kDecoderSeedChannels = 8;
constexpr std::size_t kDecoderMidChannels = 4;
}  // namespace

GridDecoder::GridDecoder(std::size_t token_dim, std::size_t out_channels,
                         std::size_t edge, Rng& rng)
    : out_channels_(out_channels),
      edge_(edge),
      seed_edge_(edge / 4),
      mid_channels_(kDecoderMidChannels),
      seed_(token_dim,
            kDecoderSeedChannels * (edge / 4) * (edge / 4) * (edge / 4), rng),
      // GELU rather than ReLU: smooth activations keep the whole decoder
      // differentiable (finite-difference verifiable) with equal quality.
      act1_(Activation::kGelu),
      up1_(kDecoderSeedChannels, kDecoderMidChannels, /*kernel=*/4,
           /*stride=*/2, /*padding=*/1, rng),
      act2_(Activation::kGelu),
      up2_(kDecoderMidChannels, out_channels, /*kernel=*/4, /*stride=*/2,
           /*padding=*/1, rng) {
  SICKLE_CHECK_MSG(edge % 4 == 0 && edge >= 4,
                   "decoder edge must be a positive multiple of 4");
}

Tensor GridDecoder::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 2, "GridDecoder expects [B, D]");
  batch_ = input.dim(0);
  const std::size_t e0 = seed_edge_;
  Tensor x = seed_.forward(input);
  x = act1_.forward(x);
  x = x.reshaped({batch_, kDecoderSeedChannels, e0, e0, e0});
  x = up1_.forward(x);
  x = act2_.forward(x);
  return up2_.forward(x);
}

Tensor GridDecoder::backward(const Tensor& grad_output) {
  Tensor g = up2_.backward(grad_output);
  g = act2_.backward(g);
  g = up1_.backward(g);
  const std::size_t e0 = seed_edge_;
  g = g.reshaped({batch_, kDecoderSeedChannels * e0 * e0 * e0});
  g = act1_.backward(g);
  return seed_.backward(g);
}

std::vector<Param*> GridDecoder::parameters() {
  std::vector<Param*> out = seed_.parameters();
  for (Module* m : std::initializer_list<Module*>{&up1_, &up2_}) {
    const auto p = m->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

double GridDecoder::flops() const {
  return seed_.flops() + up1_.flops() + up2_.flops();
}

void GridDecoder::set_training(bool training) {
  Module::set_training(training);
  for (Module* m : std::initializer_list<Module*>{&seed_, &act1_, &up1_,
                                                  &act2_, &up2_}) {
    m->set_training(training);
  }
}

// ----------------------------------------------------------- MlpTransformer

namespace {
constexpr std::size_t kMaxSequence = 1024;
}

MlpTransformer::MlpTransformer(const MlpTransformerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      pos_embed_("pos_embed",
                 Tensor::randn({kMaxSequence, cfg.dim}, rng, 0.02f)),
      decoder_(cfg.dim, cfg.out_channels, cfg.out_edge, rng) {
  const std::size_t f = cfg.in_channels * cfg.num_points;
  encoder_.push(std::make_unique<Dense>(f, 2 * cfg.dim, rng));
  encoder_.push(std::make_unique<ActivationLayer>(Activation::kGelu));
  encoder_.push(std::make_unique<Dense>(2 * cfg.dim, cfg.dim, rng));
  for (std::size_t l = 0; l < cfg.layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerEncoderLayer>(
        cfg.dim, cfg.heads, cfg.ffn, rng));
  }
}

Tensor MlpTransformer::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 3, "MlpTransformer expects [B, T, C*N]");
  batch_ = input.dim(0);
  steps_ = input.dim(1);
  SICKLE_CHECK_MSG(steps_ <= kMaxSequence, "sequence too long");
  SICKLE_CHECK(input.dim(2) == cfg_.in_channels * cfg_.num_points);

  const Tensor flat = input.reshaped({batch_ * steps_, input.dim(2)});
  Tensor tokens = encoder_.forward(flat).reshaped({batch_, steps_, cfg_.dim});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < steps_; ++t) {
      float* row = tokens.raw() + (b * steps_ + t) * cfg_.dim;
      const float* pos = pos_embed_.value.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) row[j] += pos[j];
    }
  }
  cached_tokens_ = tokens;
  Tensor x = tokens;
  for (auto& block : blocks_) x = block->forward(x);
  // Last token summarizes the sequence for the target-frame prediction.
  Tensor last({batch_, cfg_.dim});
  for (std::size_t b = 0; b < batch_; ++b) {
    std::copy_n(x.raw() + (b * steps_ + steps_ - 1) * cfg_.dim, cfg_.dim,
                last.raw() + b * cfg_.dim);
  }
  return decoder_.forward(last);
}

Tensor MlpTransformer::backward(const Tensor& grad_output) {
  const Tensor d_last = decoder_.backward(grad_output);
  Tensor g({batch_, steps_, cfg_.dim});
  for (std::size_t b = 0; b < batch_; ++b) {
    std::copy_n(d_last.raw() + b * cfg_.dim, cfg_.dim,
                g.raw() + (b * steps_ + steps_ - 1) * cfg_.dim);
  }
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  // Positional-embedding gradient: sum over batch.
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < steps_; ++t) {
      const float* row = g.raw() + (b * steps_ + t) * cfg_.dim;
      float* pg = pos_embed_.grad.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) pg[j] += row[j];
    }
  }
  const Tensor flat_g = g.reshaped({batch_ * steps_, cfg_.dim});
  const Tensor d_flat = encoder_.backward(flat_g);
  return d_flat.reshaped(
      {batch_, steps_, cfg_.in_channels * cfg_.num_points});
}

std::vector<Param*> MlpTransformer::parameters() {
  std::vector<Param*> out = encoder_.parameters();
  out.push_back(&pos_embed_);
  for (auto& b : blocks_) {
    const auto p = b->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  const auto pd = decoder_.parameters();
  out.insert(out.end(), pd.begin(), pd.end());
  return out;
}

double MlpTransformer::flops() const {
  double total = encoder_.flops() + decoder_.flops();
  for (const auto& b : blocks_) total += b->flops();
  return total;
}

void MlpTransformer::set_training(bool training) {
  Module::set_training(training);
  encoder_.set_training(training);
  for (auto& b : blocks_) b->set_training(training);
  decoder_.set_training(training);
}

// ----------------------------------------------------------- CnnTransformer

CnnTransformer::CnnTransformer(const CnnTransformerConfig& cfg, Rng& rng)
    : cfg_(cfg),
      conv1_(cfg.in_channels, 8, /*kernel=*/3, /*stride=*/2, /*padding=*/1,
             rng),
      act1_(Activation::kGelu),
      conv2_(8, 16, /*kernel=*/3, /*stride=*/2, /*padding=*/1, rng),
      act2_(Activation::kGelu),
      to_token_(cfg.fine_tokens ? 8 : 16, cfg.dim, rng),
      pos_embed_("pos_embed",
                 Tensor::randn({kMaxSequence, cfg.dim}, rng, 0.02f)),
      decoder_(cfg.dim, cfg.out_channels, cfg.out_edge, rng) {
  SICKLE_CHECK_MSG(cfg.edge % 4 == 0, "cube edge must be divisible by 4");
  const std::size_t pe = cfg.fine_tokens ? cfg.edge / 2 : cfg.edge / 4;
  patches_ = pe * pe * pe;
  for (std::size_t l = 0; l < cfg.layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerEncoderLayer>(
        cfg.dim, cfg.heads, cfg.ffn, rng));
  }
}

Tensor CnnTransformer::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 6,
                   "CnnTransformer expects [B, T, C, E, E, E]");
  batch_ = input.dim(0);
  steps_ = input.dim(1);
  SICKLE_CHECK_MSG(steps_ <= kMaxSequence, "sequence too long");
  const std::size_t e = cfg_.edge;
  SICKLE_CHECK(input.dim(2) == cfg_.in_channels && input.dim(3) == e);

  // Fold time into the conv batch.
  Tensor x = input.reshaped({batch_ * steps_, cfg_.in_channels, e, e, e});
  x = act1_.forward(conv1_.forward(x));
  const std::size_t token_ch = cfg_.fine_tokens ? 8 : 16;
  if (!cfg_.fine_tokens) x = act2_.forward(conv2_.forward(x));
  // Tokenize: every (t, patch) spatial location of the conv output becomes
  // one token; feature = the conv channels. Sequence length is
  // T * patches — the volume-dependent token count whose quadratic
  // attention cost caps tractable cube sizes (paper §5.2).
  const std::size_t seq = steps_ * patches_;
  SICKLE_CHECK_MSG(seq <= kMaxSequence, "token sequence too long");
  Tensor patch_feats({batch_ * seq, token_ch});
  for (std::size_t bt = 0; bt < batch_ * steps_; ++bt) {
    for (std::size_t c = 0; c < token_ch; ++c) {
      const float* src = x.raw() + (bt * token_ch + c) * patches_;
      for (std::size_t pvox = 0; pvox < patches_; ++pvox) {
        patch_feats[(bt * patches_ + pvox) * token_ch + c] = src[pvox];
      }
    }
  }
  Tensor tokens =
      to_token_.forward(patch_feats).reshaped({batch_, seq, cfg_.dim});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      float* row = tokens.raw() + (b * seq + t) * cfg_.dim;
      const float* pos = pos_embed_.value.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) row[j] += pos[j];
    }
  }
  Tensor y = tokens;
  for (auto& block : blocks_) y = block->forward(y);
  // Mean-pool the final frame's tokens into the decoder seed.
  Tensor pooled({batch_, cfg_.dim});
  const float inv_p = 1.0f / static_cast<float>(patches_);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = pooled.raw() + b * cfg_.dim;
    for (std::size_t pvox = 0; pvox < patches_; ++pvox) {
      const float* src =
          y.raw() + (b * seq + (steps_ - 1) * patches_ + pvox) * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) dst[j] += src[j] * inv_p;
    }
  }
  return decoder_.forward(pooled);
}

Tensor CnnTransformer::backward(const Tensor& grad_output) {
  const std::size_t seq = steps_ * patches_;
  const Tensor d_pooled = decoder_.backward(grad_output);
  Tensor g({batch_, seq, cfg_.dim});
  const float inv_p = 1.0f / static_cast<float>(patches_);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = d_pooled.raw() + b * cfg_.dim;
    for (std::size_t pvox = 0; pvox < patches_; ++pvox) {
      float* dst =
          g.raw() + (b * seq + (steps_ - 1) * patches_ + pvox) * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) dst[j] = src[j] * inv_p;
    }
  }
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const float* row = g.raw() + (b * seq + t) * cfg_.dim;
      float* pg = pos_embed_.grad.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) pg[j] += row[j];
    }
  }
  const Tensor d_tok =
      to_token_.backward(g.reshaped({batch_ * seq, cfg_.dim}));
  // Un-tokenize back to conv layout [B*T, C, pe, pe, pe].
  const std::size_t token_ch = cfg_.fine_tokens ? 8 : 16;
  const std::size_t pe = cfg_.fine_tokens ? cfg_.edge / 2 : cfg_.edge / 4;
  Tensor d_conv({batch_ * steps_, token_ch, pe, pe, pe});
  for (std::size_t bt = 0; bt < batch_ * steps_; ++bt) {
    for (std::size_t c = 0; c < token_ch; ++c) {
      float* dst = d_conv.raw() + (bt * token_ch + c) * patches_;
      for (std::size_t pvox = 0; pvox < patches_; ++pvox) {
        dst[pvox] = d_tok[(bt * patches_ + pvox) * token_ch + c];
      }
    }
  }
  if (!cfg_.fine_tokens) {
    d_conv = conv2_.backward(act2_.backward(d_conv));
  }
  Tensor d_in = conv1_.backward(act1_.backward(d_conv));
  const std::size_t e = cfg_.edge;
  return d_in.reshaped({batch_, steps_, cfg_.in_channels, e, e, e});
}

std::vector<Param*> CnnTransformer::parameters() {
  std::vector<Param*> out;
  std::vector<Module*> mods{&conv1_, &to_token_};
  if (!cfg_.fine_tokens) mods.insert(mods.begin() + 1, &conv2_);
  for (Module* m : mods) {
    const auto p = m->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  out.push_back(&pos_embed_);
  for (auto& b : blocks_) {
    const auto p = b->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  const auto pd = decoder_.parameters();
  out.insert(out.end(), pd.begin(), pd.end());
  return out;
}

double CnnTransformer::flops() const {
  double total = conv1_.flops() + conv2_.flops() + to_token_.flops() +
                 decoder_.flops();
  for (const auto& b : blocks_) total += b->flops();
  return total;
}

void CnnTransformer::set_training(bool training) {
  Module::set_training(training);
  for (Module* m : std::initializer_list<Module*>{&conv1_, &act1_, &conv2_,
                                                  &act2_, &to_token_}) {
    m->set_training(training);
  }
  for (auto& b : blocks_) b->set_training(training);
  decoder_.set_training(training);
}

// ---------------------------------------------------------- FoundationModel

FoundationModel::FoundationModel(const FoundationModelConfig& cfg, Rng& rng)
    : cfg_(cfg),
      patches_per_axis_(cfg.edge / cfg.patch),
      num_patches_(patches_per_axis_ * patches_per_axis_ * patches_per_axis_),
      patch_voxels_(cfg.patch * cfg.patch * cfg.patch),
      coarse_embed_(cfg.in_channels * cfg.patch * cfg.patch * cfg.patch,
                    cfg.dim, rng),
      fine_embed_(cfg.in_channels * cfg.patch * cfg.patch * cfg.patch,
                  cfg.dim, rng),
      pos_embed_("pos_embed", Tensor()),
      decode_(cfg.dim, cfg.out_channels * cfg.patch * cfg.patch * cfg.patch,
              rng) {
  SICKLE_CHECK_MSG(cfg.edge % cfg.patch == 0,
                   "edge must be divisible by patch");
  pos_embed_ = Param("pos_embed",
                     Tensor::randn({num_patches_, cfg.dim}, rng, 0.02f));
  for (std::size_t l = 0; l < cfg.layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerEncoderLayer>(
        cfg.dim, cfg.heads, cfg.ffn, rng));
  }
}

Tensor FoundationModel::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 5, "FoundationModel expects [B,C,E,E,E]");
  batch_ = input.dim(0);
  const std::size_t C = cfg_.in_channels;
  const std::size_t E = cfg_.edge;
  const std::size_t P = cfg_.patch;
  const std::size_t ppa = patches_per_axis_;
  SICKLE_CHECK(input.dim(1) == C && input.dim(2) == E);

  // Patchify: rows are [B * num_patches], columns C * P^3.
  const std::size_t pf = C * patch_voxels_;
  cached_patches_ = Tensor({batch_ * num_patches_, pf});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t pz = 0; pz < ppa; ++pz) {
      for (std::size_t py = 0; py < ppa; ++py) {
        for (std::size_t px = 0; px < ppa; ++px) {
          const std::size_t pid = (pz * ppa + py) * ppa + px;
          float* row =
              cached_patches_.raw() + (b * num_patches_ + pid) * pf;
          std::size_t o = 0;
          for (std::size_t c = 0; c < C; ++c) {
            for (std::size_t z = 0; z < P; ++z) {
              for (std::size_t y = 0; y < P; ++y) {
                for (std::size_t x = 0; x < P; ++x) {
                  row[o++] = input[(((b * C + c) * E + pz * P + z) * E +
                                    py * P + y) * E + px * P + x];
                }
              }
            }
          }
        }
      }
    }
  }

  // Coarse tokens everywhere.
  Tensor tokens = coarse_embed_.forward(cached_patches_);

  // Adaptivity: refine the highest-variance patches with the fine branch.
  refined_.clear();
  const auto k = static_cast<std::size_t>(
      cfg_.adaptive_fraction * static_cast<double>(num_patches_));
  if (k > 0) {
    std::vector<std::pair<double, std::size_t>> variance;
    variance.reserve(batch_ * num_patches_);
    for (std::size_t r = 0; r < batch_ * num_patches_; ++r) {
      const float* row = cached_patches_.raw() + r * pf;
      double mean = 0.0;
      for (std::size_t j = 0; j < pf; ++j) mean += row[j];
      mean /= static_cast<double>(pf);
      double var = 0.0;
      for (std::size_t j = 0; j < pf; ++j) {
        const double d = row[j] - mean;
        var += d * d;
      }
      variance.emplace_back(var, r);
    }
    // Per batch element, take its top-k rows.
    for (std::size_t b = 0; b < batch_; ++b) {
      auto begin = variance.begin() +
                   static_cast<std::ptrdiff_t>(b * num_patches_);
      auto end = begin + static_cast<std::ptrdiff_t>(num_patches_);
      std::partial_sort(begin, begin + static_cast<std::ptrdiff_t>(k), end,
                        [](const auto& a, const auto& c) {
                          return a.first > c.first;
                        });
      for (std::size_t i = 0; i < k; ++i) {
        refined_.push_back((begin + static_cast<std::ptrdiff_t>(i))->second);
      }
    }
    std::sort(refined_.begin(), refined_.end());
    // Gather refined rows, run the fine branch, scatter-add.
    Tensor gathered({refined_.size(), pf});
    for (std::size_t i = 0; i < refined_.size(); ++i) {
      std::copy_n(cached_patches_.raw() + refined_[i] * pf, pf,
                  gathered.raw() + i * pf);
    }
    const Tensor fine = fine_embed_.forward(gathered);
    for (std::size_t i = 0; i < refined_.size(); ++i) {
      float* dst = tokens.raw() + refined_[i] * cfg_.dim;
      const float* src = fine.raw() + i * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) dst[j] += src[j];
    }
  }

  // Positional embedding and transformer mixing.
  Tensor seq = tokens.reshaped({batch_, num_patches_, cfg_.dim});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < num_patches_; ++t) {
      float* row = seq.raw() + (b * num_patches_ + t) * cfg_.dim;
      const float* pos = pos_embed_.value.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) row[j] += pos[j];
    }
  }
  for (auto& block : blocks_) seq = block->forward(seq);

  // Per-patch linear decode, then un-patchify.
  const Tensor dec = decode_.forward(
      seq.reshaped({batch_ * num_patches_, cfg_.dim}));
  const std::size_t Co = cfg_.out_channels;
  Tensor out({batch_, Co, E, E, E});
  const std::size_t opf = Co * patch_voxels_;
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t pz = 0; pz < ppa; ++pz) {
      for (std::size_t py = 0; py < ppa; ++py) {
        for (std::size_t px = 0; px < ppa; ++px) {
          const std::size_t pid = (pz * ppa + py) * ppa + px;
          const float* row = dec.raw() + (b * num_patches_ + pid) * opf;
          std::size_t o = 0;
          for (std::size_t c = 0; c < Co; ++c) {
            for (std::size_t z = 0; z < P; ++z) {
              for (std::size_t y = 0; y < P; ++y) {
                for (std::size_t x = 0; x < P; ++x) {
                  out[(((b * Co + c) * E + pz * P + z) * E + py * P + y) * E +
                      px * P + x] = row[o++];
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor FoundationModel::backward(const Tensor& grad_output) {
  const std::size_t C = cfg_.in_channels;
  const std::size_t Co = cfg_.out_channels;
  const std::size_t E = cfg_.edge;
  const std::size_t P = cfg_.patch;
  const std::size_t ppa = patches_per_axis_;
  const std::size_t opf = Co * patch_voxels_;

  // Re-patchify the output gradient.
  Tensor d_dec({batch_ * num_patches_, opf});
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t pz = 0; pz < ppa; ++pz) {
      for (std::size_t py = 0; py < ppa; ++py) {
        for (std::size_t px = 0; px < ppa; ++px) {
          const std::size_t pid = (pz * ppa + py) * ppa + px;
          float* row = d_dec.raw() + (b * num_patches_ + pid) * opf;
          std::size_t o = 0;
          for (std::size_t c = 0; c < Co; ++c) {
            for (std::size_t z = 0; z < P; ++z) {
              for (std::size_t y = 0; y < P; ++y) {
                for (std::size_t x = 0; x < P; ++x) {
                  row[o++] = grad_output[(((b * Co + c) * E + pz * P + z) * E +
                                          py * P + y) * E + px * P + x];
                }
              }
            }
          }
        }
      }
    }
  }

  Tensor g = decode_.backward(d_dec)
                 .reshaped({batch_, num_patches_, cfg_.dim});
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t t = 0; t < num_patches_; ++t) {
      const float* row = g.raw() + (b * num_patches_ + t) * cfg_.dim;
      float* pg = pos_embed_.grad.raw() + t * cfg_.dim;
      for (std::size_t j = 0; j < cfg_.dim; ++j) pg[j] += row[j];
    }
  }
  const Tensor g_rows = g.reshaped({batch_ * num_patches_, cfg_.dim});

  // Fine branch gradient for refined rows only.
  if (!refined_.empty()) {
    Tensor g_fine({refined_.size(), cfg_.dim});
    for (std::size_t i = 0; i < refined_.size(); ++i) {
      std::copy_n(g_rows.raw() + refined_[i] * cfg_.dim, cfg_.dim,
                  g_fine.raw() + i * cfg_.dim);
    }
    // fine_embed_'s cache still holds the gathered rows from forward().
    (void)fine_embed_.backward(g_fine);
  }

  // Coarse branch over all rows; input gradient is discarded — the model
  // is the top of the graph (inputs are data, not activations).
  (void)coarse_embed_.backward(g_rows);
  return Tensor({batch_, C, E, E, E});
}

std::vector<Param*> FoundationModel::parameters() {
  std::vector<Param*> out = coarse_embed_.parameters();
  const auto pf = fine_embed_.parameters();
  out.insert(out.end(), pf.begin(), pf.end());
  out.push_back(&pos_embed_);
  for (auto& b : blocks_) {
    const auto p = b->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  const auto pd = decode_.parameters();
  out.insert(out.end(), pd.begin(), pd.end());
  return out;
}

double FoundationModel::flops() const {
  double total = coarse_embed_.flops() + fine_embed_.flops() +
                 decode_.flops();
  for (const auto& b : blocks_) total += b->flops();
  return total;
}

void FoundationModel::set_training(bool training) {
  Module::set_training(training);
  coarse_embed_.set_training(training);
  fine_embed_.set_training(training);
  for (auto& b : blocks_) b->set_training(training);
  decode_.set_training(training);
}

}  // namespace sickle::ml
