#include "ml/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/timer.hpp"

namespace sickle::ml {

void TensorDataset::push(Tensor input, Tensor target) {
  if (!inputs_.empty()) {
    SICKLE_CHECK_MSG(input.shape() == inputs_.front().shape() &&
                         target.shape() == targets_.front().shape(),
                     "all dataset examples must share shapes");
  }
  inputs_.push_back(std::move(input));
  targets_.push_back(std::move(target));
}

std::pair<Tensor, Tensor> TensorDataset::batch(
    std::span<const std::size_t> indices) const {
  SICKLE_CHECK_MSG(!indices.empty() && !inputs_.empty(),
                   "cannot build an empty batch");
  auto in_shape = inputs_.front().shape();
  auto tg_shape = targets_.front().shape();
  in_shape.insert(in_shape.begin(), indices.size());
  tg_shape.insert(tg_shape.begin(), indices.size());
  Tensor in(in_shape), tg(tg_shape);
  const std::size_t in_sz = inputs_.front().size();
  const std::size_t tg_sz = targets_.front().size();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    std::copy_n(inputs_.at(i).raw(), in_sz, in.raw() + b * in_sz);
    std::copy_n(targets_.at(i).raw(), tg_sz, tg.raw() + b * tg_sz);
  }
  return {std::move(in), std::move(tg)};
}

double TensorDataset::bytes() const noexcept {
  if (inputs_.empty()) return 0.0;
  return static_cast<double>(inputs_.size()) *
         static_cast<double>(inputs_.front().size() +
                             targets_.front().size()) *
         sizeof(float);
}

namespace {

/// Average gradients across ranks (DDP). Gradients are cast through double
/// for the allreduce, matching the determinism of the SPMD collectives.
void allreduce_gradients(Module& model, Comm& comm) {
  std::vector<double> flat;
  for (Param* p : model.parameters()) {
    for (const float g : p->grad.data()) flat.push_back(g);
  }
  comm.allreduce_sum(flat);
  const double inv = 1.0 / static_cast<double>(comm.size());
  std::size_t pos = 0;
  for (Param* p : model.parameters()) {
    for (auto& g : p->grad.data()) {
      g = static_cast<float>(flat[pos++] * inv);
    }
  }
}

}  // namespace

double evaluate(Module& model, const TensorDataset& data,
                std::span<const std::size_t> indices,
                std::size_t batch_size) {
  if (indices.empty()) return 0.0;
  model.set_training(false);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t b = 0; b < indices.size(); b += batch_size) {
    const std::size_t e = std::min(indices.size(), b + batch_size);
    const auto [in, tg] =
        data.batch(indices.subspan(b, e - b));
    const Tensor pred = model.forward(in);
    total += mse_loss(pred, tg).value * static_cast<double>(e - b);
    count += e - b;
  }
  model.set_training(true);
  return total / static_cast<double>(count);
}

TrainReport fit(Module& model, const TensorDataset& data,
                const TrainConfig& cfg, Comm* comm) {
  SICKLE_CHECK_MSG(data.size() >= 2, "dataset too small to split");
  TrainReport report;
  Timer timer;
  report.parameters = model.num_parameters();

  // Deterministic 90:10 split (same permutation on every rank).
  Rng split_rng(cfg.seed, /*stream=*/0x51);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  split_rng.shuffle(std::span<std::size_t>(order));
  const auto n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.test_fraction *
                                  static_cast<double>(data.size())));
  const std::size_t n_train = data.size() - n_test;
  std::vector<std::size_t> train_idx(order.begin(),
                                     order.begin() + n_train);
  std::vector<std::size_t> test_idx(order.begin() + n_train, order.end());

  Adam opt(model.parameters(), cfg.lr);
  opt.set_precision(cfg.precision);
  ReduceLROnPlateau scheduler(opt, cfg.lr_factor, cfg.patience);

  Rng epoch_rng(cfg.seed, /*stream=*/0xE9);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    epoch_rng.shuffle(std::span<std::size_t>(train_idx));
    double epoch_loss = 0.0;
    std::size_t steps = 0;
    for (std::size_t b = 0; b < n_train; b += cfg.batch) {
      const std::size_t e = std::min(n_train, b + cfg.batch);
      // DDP: shard this batch across ranks.
      std::size_t lo = b, hi = e;
      if (comm != nullptr) {
        const std::size_t span = e - b;
        const std::size_t per =
            (span + comm->size() - 1) / comm->size();
        lo = std::min(e, b + comm->rank() * per);
        hi = std::min(e, lo + per);
        if (lo >= hi) {
          // Idle rank this batch: still participates in the allreduce.
          model.zero_grad();
          allreduce_gradients(model, *comm);
          opt.step();
          continue;
        }
      }
      const auto [in, tg] = data.batch(
          std::span<const std::size_t>(train_idx.data() + lo, hi - lo));
      opt.zero_grad();
      const Tensor pred = model.forward(in);
      const LossResult loss = mse_loss(pred, tg);
      model.backward(loss.grad);
      if (comm != nullptr) allreduce_gradients(model, *comm);
      opt.step();

      double batch_loss = loss.value;
      if (comm != nullptr) {
        batch_loss = comm->allreduce_sum(batch_loss) /
                     static_cast<double>(comm->size());
      }
      epoch_loss += batch_loss;
      ++steps;
      report.energy.add_flops(model.flops());
      report.energy.add_bytes(
          static_cast<double>(in.size() + tg.size()) * sizeof(float) * 3.0);
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, steps));
    report.epoch_losses.push_back(epoch_loss);
    scheduler.step(epoch_loss);
    if (cfg.verbose && (epoch % 10 == 0 || epoch + 1 == cfg.epochs)) {
      std::printf("epoch %zu loss %.6f lr %.2e\n", epoch, epoch_loss,
                  opt.lr());
    }
  }

  report.final_train_loss =
      report.epoch_losses.empty() ? 0.0 : report.epoch_losses.back();
  report.test_loss = evaluate(model, data,
                              std::span<const std::size_t>(test_idx),
                              cfg.batch);
  report.seconds = timer.seconds();
  report.energy.add_seconds(report.seconds);
  return report;
}

}  // namespace sickle::ml
