#include "ml/optim.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sickle::ml {

float quantize(float x, Precision precision) noexcept {
  switch (precision) {
    case Precision::kFp32:
      return x;
    case Precision::kBf16: {
      // bf16: keep the top 16 bits of the IEEE-754 representation
      // (round-to-nearest-even on the truncated half).
      std::uint32_t bits;
      std::memcpy(&bits, &x, 4);
      const std::uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
      bits = (bits + rounding) & 0xFFFF0000u;
      float out;
      std::memcpy(&out, &bits, 4);
      return out;
    }
    case Precision::kFp16: {
      // Emulate binary16 range/precision: clamp to +-65504 and round the
      // significand to 10 bits.
      if (std::isnan(x)) return x;
      const float clamped = std::clamp(x, -65504.0f, 65504.0f);
      if (clamped == 0.0f) return 0.0f;
      int exp;
      const float frac = std::frexp(clamped, &exp);
      const float scale = 1024.0f;  // 2^10 significand bits
      return std::ldexp(std::round(frac * 2.0f * scale) / (2.0f * scale),
                        exp);
    }
  }
  return x;
}

void Optimizer::quantize_params() {
  if (precision_ == Precision::kFp32) return;
  for (Param* p : params_) {
    for (auto& x : p->value.data()) x = quantize(x, precision_);
  }
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) {
    velocity_.emplace_back(Tensor::zeros(p->value.shape()));
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data();
    const auto grad = params_[i]->grad.data();
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      vel[j] = mu * vel[j] - lr * grad[j];
      val[j] += vel[j];
    }
  }
  quantize_params();
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(Tensor::zeros(p->value.shape()));
    v_.emplace_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const auto eps = static_cast<float>(eps_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto val = params_[i]->value.data();
    const auto grad = params_[i]->grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * grad[j];
      v[j] = b2 * v[j] + (1.0f - b2) * grad[j] * grad[j];
      val[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
  quantize_params();
}

ReduceLROnPlateau::ReduceLROnPlateau(Optimizer& opt, double factor,
                                     std::size_t patience, double min_lr)
    : opt_(opt), factor_(factor), patience_(patience), min_lr_(min_lr) {}

bool ReduceLROnPlateau::step(double loss) {
  if (loss < best_ - 1e-12) {
    best_ = loss;
    bad_epochs_ = 0;
    return false;
  }
  if (++bad_epochs_ <= patience_) return false;
  bad_epochs_ = 0;
  const double next = std::max(opt_.lr() * factor_, min_lr_);
  const bool reduced = next < opt_.lr();
  opt_.set_lr(next);
  return reduced;
}

}  // namespace sickle::ml
