// The paper's three surrogate architectures (Table 2) and the MATEY-like
// foundation model used in Fig. 9.
//
//   LSTM            [B,T,C]        -> [B,T',C']        sample-single
//   MLP-Transformer [B,T,C*N]      -> [B,C',E,E,E]     sample-full
//   CNN-Transformer [B,T,C,E,E,E]  -> [B,C',E,E,E]     full-full
//   FoundationModel [B,C,E,E,E]    -> [B,C',E,E,E]     multiscale adaptive
//
// All are assembled from the explicit-backprop layers in this module; the
// decoder of the two transformer variants is a shared ConvTranspose3D
// stack reconstructing a dense E^3 cube (E divisible by 4).
#pragma once

#include <memory>

#include "ml/attention.hpp"
#include "ml/conv3d.hpp"
#include "ml/layers_basic.hpp"
#include "ml/lstm.hpp"
#include "ml/module.hpp"

namespace sickle::ml {

/// "Two LSTM layers, three dense layers" — the drag-prediction surrogate.
struct LstmModelConfig {
  std::size_t in_channels = 2;
  std::size_t hidden = 32;
  std::size_t out_channels = 1;
  std::size_t horizon = 1;  ///< T' predicted steps
};

class LstmModel final : public Module {
 public:
  LstmModel(const LstmModelConfig& cfg, Rng& rng);

  /// [B, T, C] -> [B, horizon, out_channels].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "LstmModel"; }

  // Structure access for checkpoint converters (infer::compile): the two
  // recurrent layers and the dense head, plus the construction config.
  [[nodiscard]] const LstmModelConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const Lstm& lstm1() const noexcept { return lstm1_; }
  [[nodiscard]] const Lstm& lstm2() const noexcept { return lstm2_; }
  [[nodiscard]] Sequential& head() noexcept { return head_; }

 private:
  LstmModelConfig cfg_;
  Lstm lstm1_, lstm2_;
  Sequential head_;
  std::size_t batch_ = 0, steps_ = 0;
};

/// Shared dense-cube decoder: token [*, D] -> [*, C', E, E, E] via a dense
/// seed and two stride-2 transposed convolutions (E = 4 * seed edge).
class GridDecoder final : public Module {
 public:
  GridDecoder(std::size_t token_dim, std::size_t out_channels,
              std::size_t edge, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "GridDecoder"; }

 private:
  std::size_t out_channels_, edge_, seed_edge_, mid_channels_;
  Dense seed_;
  ActivationLayer act1_;
  ConvTranspose3D up1_;
  ActivationLayer act2_;
  ConvTranspose3D up2_;
  std::size_t batch_ = 0;
};

/// MLP encoder + transformer encoder + CNN decoder over unstructured
/// subsampled points (the sample-full architecture).
struct MlpTransformerConfig {
  std::size_t in_channels = 4;   ///< C (variables per point)
  std::size_t num_points = 256;  ///< N subsamples per timestep
  std::size_t dim = 64;          ///< token width
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn = 128;
  std::size_t out_channels = 1;  ///< C'
  std::size_t out_edge = 8;      ///< E (divisible by 4)
};

class MlpTransformer final : public Module {
 public:
  MlpTransformer(const MlpTransformerConfig& cfg, Rng& rng);

  /// [B, T, C*N] -> [B, C', E, E, E] (prediction for the target frame).
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "MlpTransformer"; }

 private:
  MlpTransformerConfig cfg_;
  Sequential encoder_;  ///< per-timestep MLP: C*N -> dim
  Param pos_embed_;     ///< [max_T, dim] learned positional embedding
  std::vector<std::unique_ptr<TransformerEncoderLayer>> blocks_;
  GridDecoder decoder_;
  std::size_t batch_ = 0, steps_ = 0;
  Tensor cached_tokens_;  ///< encoder output + pos, shape [B, T, dim]
};

/// CNN encoder + transformer + CNN decoder over dense hypercubes
/// (the full-full architecture).
///
/// Each frame is tokenized into (edge/4)^3 PATCH tokens (not one token per
/// frame): attention runs over all T * (edge/4)^3 tokens. This is the
/// paper's tractability constraint made concrete — the token count grows
/// with cube volume, and attention is quadratic in it, which is why the
/// paper caps hypercubes at 32^3.
struct CnnTransformerConfig {
  std::size_t in_channels = 4;
  std::size_t edge = 8;          ///< input cube edge (divisible by 4)
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn = 128;
  std::size_t out_channels = 1;
  std::size_t out_edge = 8;
  /// Fine tokenization: one token per stride-2 conv voxel ((edge/2)^3
  /// tokens/frame) instead of (edge/4)^3 — the regime where attention
  /// dominates, as in the paper's full-full runs.
  bool fine_tokens = false;
};

class CnnTransformer final : public Module {
 public:
  CnnTransformer(const CnnTransformerConfig& cfg, Rng& rng);

  /// [B, T, C, E, E, E] -> [B, C', E', E', E'].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "CnnTransformer"; }

 private:
  CnnTransformerConfig cfg_;
  Conv3D conv1_;
  ActivationLayer act1_;
  Conv3D conv2_;
  ActivationLayer act2_;
  Dense to_token_;   ///< per-patch: conv channels -> dim
  Param pos_embed_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> blocks_;
  GridDecoder decoder_;
  std::size_t batch_ = 0, steps_ = 0;
  std::size_t patches_ = 0;  ///< (edge/4)^3 tokens per frame
};

/// MATEY-like multiscale adaptive patch transformer: coarse patch tokens
/// everywhere plus fine-scale tokens on the highest-variance patches
/// (adaptivity), transformer mixing, per-patch linear decode.
struct FoundationModelConfig {
  std::size_t in_channels = 4;
  std::size_t edge = 16;        ///< input cube edge (divisible by patch)
  std::size_t patch = 4;        ///< coarse patch edge
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn = 128;
  std::size_t out_channels = 1;
  double adaptive_fraction = 0.25;  ///< share of patches refined
};

class FoundationModel final : public Module {
 public:
  FoundationModel(const FoundationModelConfig& cfg, Rng& rng);

  /// [B, C, E, E, E] -> [B, C', E, E, E].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "FoundationModel"; }

  /// Patch ids refined on the most recent forward (for tests/diagnostics).
  [[nodiscard]] const std::vector<std::size_t>& refined_patches() const {
    return refined_;
  }

 private:
  FoundationModelConfig cfg_;
  std::size_t patches_per_axis_, num_patches_, patch_voxels_;
  Dense coarse_embed_;  ///< patch voxels*C -> dim
  Dense fine_embed_;    ///< same input, separate weights (refinement branch)
  Param pos_embed_;     ///< [num_patches, dim]
  std::vector<std::unique_ptr<TransformerEncoderLayer>> blocks_;
  Dense decode_;        ///< dim -> patch voxels * C'
  std::size_t batch_ = 0;
  std::vector<std::size_t> refined_;
  Tensor cached_patches_;  ///< [B*P, C*patch^3] patch matrix
};

}  // namespace sickle::ml
