#include "ml/attention.hpp"

#include <cmath>

namespace sickle::ml {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t dim,
                                               std::size_t heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      w_q_("w_q", Tensor::randn({dim, dim}, rng,
                                static_cast<float>(std::sqrt(1.0 / dim)))),
      w_k_("w_k", Tensor::randn({dim, dim}, rng,
                                static_cast<float>(std::sqrt(1.0 / dim)))),
      w_v_("w_v", Tensor::randn({dim, dim}, rng,
                                static_cast<float>(std::sqrt(1.0 / dim)))),
      w_o_("w_o", Tensor::randn({dim, dim}, rng,
                                static_cast<float>(std::sqrt(1.0 / dim)))) {
  SICKLE_CHECK_MSG(dim % heads == 0, "attention dim must divide by heads");
}

Tensor MultiHeadSelfAttention::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.rank() == 3 && input.dim(2) == dim_,
                   "MHSA expects [B, T, D]");
  batch_ = input.dim(0);
  steps_ = input.dim(1);
  cached_input_ = input;
  const std::size_t rows = batch_ * steps_;

  q_ = Tensor({batch_, steps_, dim_});
  k_ = Tensor({batch_, steps_, dim_});
  v_ = Tensor({batch_, steps_, dim_});
  matmul_bt(input.data(), w_q_.value.data(), q_.data(), rows, dim_, dim_);
  matmul_bt(input.data(), w_k_.value.data(), k_.data(), rows, dim_, dim_);
  matmul_bt(input.data(), w_v_.value.data(), v_.data(), rows, dim_, dim_);

  probs_ = Tensor({batch_, heads_, steps_, steps_});
  concat_ = Tensor({batch_, steps_, dim_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t off = h * head_dim_;
      float* p_head =
          probs_.raw() + ((b * heads_ + h) * steps_) * steps_;
      // scores[t, s] = scale * q[b,t,off:off+hd] . k[b,s,off:off+hd]
      for (std::size_t t = 0; t < steps_; ++t) {
        const float* qrow = q_.raw() + (b * steps_ + t) * dim_ + off;
        float* prow = p_head + t * steps_;
        float max_score = -1e30f;
        for (std::size_t s = 0; s < steps_; ++s) {
          const float* krow = k_.raw() + (b * steps_ + s) * dim_ + off;
          float acc = 0.0f;
          for (std::size_t j = 0; j < head_dim_; ++j) acc += qrow[j] * krow[j];
          prow[s] = acc * scale;
          max_score = std::max(max_score, prow[s]);
        }
        // softmax row
        float denom = 0.0f;
        for (std::size_t s = 0; s < steps_; ++s) {
          prow[s] = std::exp(prow[s] - max_score);
          denom += prow[s];
        }
        const float inv = 1.0f / denom;
        for (std::size_t s = 0; s < steps_; ++s) prow[s] *= inv;
        // context[t] = sum_s p[t,s] v[s]
        float* crow = concat_.raw() + (b * steps_ + t) * dim_ + off;
        for (std::size_t j = 0; j < head_dim_; ++j) crow[j] = 0.0f;
        for (std::size_t s = 0; s < steps_; ++s) {
          const float* vrow = v_.raw() + (b * steps_ + s) * dim_ + off;
          const float w = prow[s];
          for (std::size_t j = 0; j < head_dim_; ++j) crow[j] += w * vrow[j];
        }
      }
    }
  }

  Tensor out({batch_, steps_, dim_});
  matmul_bt(concat_.data(), w_o_.value.data(), out.data(), rows, dim_, dim_);
  return out;
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_output) {
  const std::size_t rows = batch_ * steps_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Output projection.
  Tensor d_concat({batch_, steps_, dim_});
  matmul_at(grad_output.data(), concat_.data(), w_o_.grad.data(), dim_, rows,
            dim_, /*accumulate=*/true);
  matmul(grad_output.data(), w_o_.value.data(), d_concat.data(), rows, dim_,
         dim_);

  Tensor dq({batch_, steps_, dim_});
  Tensor dk({batch_, steps_, dim_});
  Tensor dv({batch_, steps_, dim_});

  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t h = 0; h < heads_; ++h) {
      const std::size_t off = h * head_dim_;
      const float* p_head =
          probs_.raw() + ((b * heads_ + h) * steps_) * steps_;
      for (std::size_t t = 0; t < steps_; ++t) {
        const float* dctx = d_concat.raw() + (b * steps_ + t) * dim_ + off;
        const float* prow = p_head + t * steps_;
        // dV[s] += p[t,s] * dctx ;  dp[t,s] = dctx . v[s]
        // softmax backward: dscore = p * (dp - sum_s p dp)
        float dot = 0.0f;
        std::vector<float> dp(steps_);
        for (std::size_t s = 0; s < steps_; ++s) {
          const float* vrow = v_.raw() + (b * steps_ + s) * dim_ + off;
          float acc = 0.0f;
          for (std::size_t j = 0; j < head_dim_; ++j) acc += dctx[j] * vrow[j];
          dp[s] = acc;
          dot += prow[s] * acc;
          float* dvrow = dv.raw() + (b * steps_ + s) * dim_ + off;
          for (std::size_t j = 0; j < head_dim_; ++j) {
            dvrow[j] += prow[s] * dctx[j];
          }
        }
        const float* qrow = q_.raw() + (b * steps_ + t) * dim_ + off;
        float* dqrow = dq.raw() + (b * steps_ + t) * dim_ + off;
        for (std::size_t s = 0; s < steps_; ++s) {
          const float dscore = prow[s] * (dp[s] - dot) * scale;
          const float* krow = k_.raw() + (b * steps_ + s) * dim_ + off;
          float* dkrow = dk.raw() + (b * steps_ + s) * dim_ + off;
          for (std::size_t j = 0; j < head_dim_; ++j) {
            dqrow[j] += dscore * krow[j];
            dkrow[j] += dscore * qrow[j];
          }
        }
      }
    }
  }

  // Projection weight grads and input grad.
  matmul_at(dq.data(), cached_input_.data(), w_q_.grad.data(), dim_, rows,
            dim_, /*accumulate=*/true);
  matmul_at(dk.data(), cached_input_.data(), w_k_.grad.data(), dim_, rows,
            dim_, /*accumulate=*/true);
  matmul_at(dv.data(), cached_input_.data(), w_v_.grad.data(), dim_, rows,
            dim_, /*accumulate=*/true);

  Tensor grad_in({batch_, steps_, dim_});
  matmul(dq.data(), w_q_.value.data(), grad_in.data(), rows, dim_, dim_);
  matmul(dk.data(), w_k_.value.data(), grad_in.data(), rows, dim_, dim_,
         /*accumulate=*/true);
  matmul(dv.data(), w_v_.value.data(), grad_in.data(), rows, dim_, dim_,
         /*accumulate=*/true);
  return grad_in;
}

std::vector<Param*> MultiHeadSelfAttention::parameters() {
  return {&w_q_, &w_k_, &w_v_, &w_o_};
}

double MultiHeadSelfAttention::flops() const {
  const double rows = static_cast<double>(batch_ * steps_);
  const double proj = 4.0 * 2.0 * rows * static_cast<double>(dim_ * dim_);
  const double attn = 2.0 * static_cast<double>(batch_) *
                      static_cast<double>(steps_) *
                      static_cast<double>(steps_) *
                      static_cast<double>(dim_);
  return 3.0 * (proj + 2.0 * attn);
}

TransformerEncoderLayer::TransformerEncoderLayer(std::size_t dim,
                                                 std::size_t heads,
                                                 std::size_t ffn_dim,
                                                 Rng& rng)
    : ln1_(dim),
      attn_(dim, heads, rng),
      ln2_(dim),
      ffn1_(dim, ffn_dim, rng),
      gelu_(Activation::kGelu),
      ffn2_(ffn_dim, dim, rng) {}

Tensor TransformerEncoderLayer::forward(const Tensor& input) {
  // x1 = x + attn(ln1(x))
  Tensor a = attn_.forward(ln1_.forward(input));
  Tensor x1(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) x1[i] = input[i] + a[i];
  // x2 = x1 + ffn(ln2(x1))
  Tensor f = ffn2_.forward(gelu_.forward(ffn1_.forward(ln2_.forward(x1))));
  Tensor x2(x1.shape());
  for (std::size_t i = 0; i < x1.size(); ++i) x2[i] = x1[i] + f[i];
  return x2;
}

Tensor TransformerEncoderLayer::backward(const Tensor& grad_output) {
  // Residual 2: g flows to both x1 and the FFN branch.
  Tensor g_ffn = ln2_.backward(
      ffn1_.backward(gelu_.backward(ffn2_.backward(grad_output))));
  Tensor g_x1(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    g_x1[i] = grad_output[i] + g_ffn[i];
  }
  // Residual 1.
  Tensor g_attn = ln1_.backward(attn_.backward(g_x1));
  Tensor grad_in(g_x1.shape());
  for (std::size_t i = 0; i < g_x1.size(); ++i) {
    grad_in[i] = g_x1[i] + g_attn[i];
  }
  return grad_in;
}

std::vector<Param*> TransformerEncoderLayer::parameters() {
  std::vector<Param*> out;
  for (Module* m : std::initializer_list<Module*>{&ln1_, &attn_, &ln2_,
                                                  &ffn1_, &ffn2_}) {
    const auto p = m->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

double TransformerEncoderLayer::flops() const {
  return attn_.flops() + ffn1_.flops() + ffn2_.flops();
}

void TransformerEncoderLayer::set_training(bool training) {
  Module::set_training(training);
  for (Module* m : std::initializer_list<Module*>{&ln1_, &attn_, &ln2_,
                                                  &ffn1_, &gelu_, &ffn2_}) {
    m->set_training(training);
  }
}

}  // namespace sickle::ml
