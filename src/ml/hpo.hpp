// Hyperparameter optimization (the paper's --tune / DeepHyper stand-in).
//
// DeepHyper's Bayesian search is replaced by random search with successive
// halving: sample configurations, evaluate all at a small epoch budget,
// keep the best fraction, multiply the budget, repeat. This exercises the
// same tune-then-train code path at a fraction of the machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace sickle::ml {

struct HpoCandidate {
  double lr = 1e-3;
  std::size_t hidden = 32;
  std::size_t layers = 2;
  double loss = 0.0;       ///< filled by the tuner
  std::size_t epochs = 0;  ///< budget the loss was measured at
};

struct HpoConfig {
  std::size_t num_candidates = 8;
  std::size_t initial_epochs = 5;
  std::size_t rungs = 3;         ///< halving rounds
  double keep_fraction = 0.5;
  std::vector<double> lr_choices{3e-4, 1e-3, 3e-3};
  std::vector<std::size_t> hidden_choices{16, 32, 64};
  std::vector<std::size_t> layer_choices{1, 2};
  std::uint64_t seed = 0;
};

/// Objective: train a model with (candidate, epoch budget) and return the
/// validation loss. Must be deterministic given its arguments.
using HpoObjective =
    std::function<double(const HpoCandidate&, std::size_t epochs)>;

struct HpoReport {
  HpoCandidate best;
  std::vector<HpoCandidate> history;  ///< all evaluations, in order
  std::size_t total_epochs = 0;       ///< summed training budget spent
};

[[nodiscard]] HpoReport tune(const HpoObjective& objective,
                             const HpoConfig& cfg);

}  // namespace sickle::ml
