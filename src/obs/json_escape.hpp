// Internal: minimal JSON string escaping shared by the metrics and
// trace exporters. Not part of the public obs API.
#pragma once

#include <cstdio>
#include <string>

namespace sickle::obs::detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sickle::obs::detail
