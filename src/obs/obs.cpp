#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sickle::obs {

void apply(const ObsOptions& opts) { set_enabled(opts.enabled); }

void finalize(const ObsOptions& opts) {
  if (!opts.trace_path.empty()) {
    Tracer::instance().write_chrome_trace(opts.trace_path);
  }
  if (!opts.metrics_path.empty()) {
    MetricsRegistry::global().write_json(opts.metrics_path);
  }
}

std::string summary_table() {
  const auto snap = MetricsRegistry::global().snapshot();
  if (snap.empty()) return "";
  std::size_t width = 0;
  for (const auto& [name, value] : snap) width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, value] : snap) {
    char buf[64];
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::abs(value) < 9.0e15) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    os << "  " << name << std::string(width - name.size() + 2, ' ') << buf
       << "\n";
  }
  return os.str();
}

}  // namespace sickle::obs
