// Scoped span tracing with Chrome trace-event export.
//
// `Span` is an RAII start/stop marker: construction notes the start time
// and pushes onto a thread-local span stack (so nested spans record
// their parent), destruction records one complete event into the
// thread's buffer. Buffers are drained into a bounded central ring by
// the exporter; `write_chrome_trace()` emits the Chrome trace-event JSON
// format ("X" complete events) that chrome://tracing and Perfetto load
// directly.
//
// The entire layer is gated on one process-global relaxed atomic flag
// (`obs::enabled()`, default off): a Span constructed while disabled is
// inert — no clock read, no allocation, no lock — which is what keeps
// the instrumented hot paths (pool tasks, chunk decodes) at zero cost
// for users who never turn observability on. The bench-smoke CI job
// gates this claim (< 3% on the pipeline row; see docs/OBSERVABILITY.md
// for measured numbers).
//
// Span name/category must be string literals (or outlive the tracer's
// buffered events): events store the pointers, not copies, so recording
// a span costs one vector push_back under an uncontended per-thread
// mutex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sickle::obs {

/// Turn the observability layer (spans + instrumented-destructor metric
/// publication) on or off. Off by default.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Monotonic nanoseconds since the tracer's process epoch. 0 is only
/// returned before the tracer is first touched, so instrumentation can
/// use 0 as a "not timestamped" sentinel.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// One completed span. `name`/`cat` point at caller-owned literals.
struct TraceEvent {
  const char* name;
  const char* cat;
  std::uint64_t ts_ns;   // start, ns since tracer epoch
  std::uint64_t dur_ns;  // duration
  std::uint32_t tid;     // dense tracer-assigned thread id
  std::uint32_t depth;   // nesting depth on its thread (0 = root)
  std::uint64_t id;      // unique span id (1-based)
  std::uint64_t parent;  // enclosing span's id, 0 for roots
};

/// RAII span. Construct at the top of the scope being traced:
///
///   obs::Span span("case.sampling", "case");
///
/// Spans on one thread must destruct in LIFO order (guaranteed by scoped
/// usage). A span created while tracing is disabled records nothing,
/// even if tracing is enabled before it ends.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "case") noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Process-global trace collector. Leaked singleton (worker threads and
/// instrumented destructors may record during static teardown).
class Tracer {
 public:
  /// Internal state; defined in trace.cpp only.
  struct Impl;

  static Tracer& instance();

  /// Copy of every buffered event (central ring + live thread buffers),
  /// sorted by (tid, ts, -dur) so parents precede their children.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events recorded but discarded because the buffer cap was hit.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Drop all buffered events and reset the drop counter. Test hook —
  /// live spans on other threads keep recording afterwards.
  void clear();

  /// Write everything buffered as Chrome trace-event JSON
  /// ({"traceEvents": [...]}, ph:"X", ts/dur in microseconds). Throws
  /// RuntimeError on I/O failure.
  void write_chrome_trace(const std::string& path) const;

  /// Total events currently buffered across all threads.
  [[nodiscard]] std::size_t size() const;

 private:
  friend class Span;
  friend std::uint64_t now_ns() noexcept;
  Tracer();

  std::uint64_t next_span_id() noexcept;
  void record(const TraceEvent& ev) noexcept;

  Impl* impl_;  // leaked with the singleton
};

}  // namespace sickle::obs
