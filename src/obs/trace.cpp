#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/error.hpp"
#include "obs/json_escape.hpp"

namespace sickle::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

// Per-thread event buffer. The owning thread appends under `mu` (the
// exporter copies concurrently); `stack` is owner-thread-only state for
// parent tracking and needs no lock. Registered with the tracer on
// first use, flushed into the central ring and unregistered when the
// thread exits.
struct ThreadBuf {
  explicit ThreadBuf(Tracer::Impl& impl);
  ~ThreadBuf();

  Tracer::Impl& owner;
  std::uint32_t tid = 0;
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::vector<std::uint64_t> stack;
};

struct Tracer::Impl {
  // Lock order: mu before any ThreadBuf::mu (exporter path); recording
  // takes only the buffer's own mutex.
  mutable std::mutex mu;
  std::vector<ThreadBuf*> bufs;
  std::vector<TraceEvent> central;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint32_t> next_tid{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> dropped{0};

  // Backstop against unbounded growth in long traced runs (~64 MB of
  // events). Approximate: concurrent recorders may overshoot by a few.
  static constexpr std::uint64_t kMaxEvents = 1u << 20;
};

namespace {

ThreadBuf& local_buf(Tracer::Impl& impl) {
  thread_local ThreadBuf buf(impl);
  return buf;
}

}  // namespace

ThreadBuf::ThreadBuf(Tracer::Impl& impl) : owner(impl) {
  std::lock_guard<std::mutex> lock(owner.mu);
  tid = owner.next_tid.fetch_add(1, std::memory_order_relaxed);
  owner.bufs.push_back(this);
}

ThreadBuf::~ThreadBuf() {
  // Unregistering under owner.mu serializes against the exporter; once
  // removed from `bufs` nothing else can reach this buffer, so the
  // events move needs no further locking.
  std::lock_guard<std::mutex> lock(owner.mu);
  owner.bufs.erase(std::remove(owner.bufs.begin(), owner.bufs.end(), this),
                   owner.bufs.end());
  owner.central.insert(owner.central.end(), events.begin(), events.end());
}

Tracer& Tracer::instance() {
  // Leaked: spans in worker threads and instrumented destructors may
  // record during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : impl_(new Impl()) {}

std::uint64_t now_ns() noexcept {
  const auto& impl = *Tracer::instance().impl_;
  const auto delta = std::chrono::steady_clock::now() - impl.epoch;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count();
  // Never 0: callers use 0 as a "not timestamped" sentinel.
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 1u;
}

std::uint64_t Tracer::next_span_id() noexcept {
  return impl_->next_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(const TraceEvent& ev) noexcept {
  auto& impl = *impl_;
  if (impl.total.load(std::memory_order_relaxed) >= Impl::kMaxEvents) {
    impl.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  impl.total.fetch_add(1, std::memory_order_relaxed);
  ThreadBuf& buf = local_buf(impl);
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  auto& impl = *impl_;
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    out = impl.central;
    for (ThreadBuf* buf : impl.bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Parents precede children: same thread, earlier start first, and on
  // equal starts the longer (outer) span first.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::size_t Tracer::size() const {
  auto& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mu);
  std::size_t n = impl.central.size();
  for (ThreadBuf* buf : impl.bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  auto& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mu);
  impl.central.clear();
  for (ThreadBuf* buf : impl.bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  impl.total.store(0, std::memory_order_relaxed);
  impl.dropped.store(0, std::memory_order_relaxed);
}

void Tracer::write_chrome_trace(const std::string& path) const {
  const auto evs = events();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw RuntimeError("cannot open trace path: " + path);
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": "
         "{\"dropped_events\": "
      << dropped() << "},\n  \"traceEvents\": [";
  char buf[160];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << detail::json_escape(e.name)
        << "\", \"cat\": \"" << detail::json_escape(e.cat)
        << "\", \"ph\": \"X\"";
    // Chrome trace timestamps are microseconds; %.3f keeps the full
    // nanosecond resolution.
    std::snprintf(buf, sizeof(buf),
                  ", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"id\": %llu, \"parent\": %llu, "
                  "\"depth\": %u}}",
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent), e.depth);
    out << buf;
  }
  out << (evs.empty() ? "]" : "\n  ]") << "\n}\n";
  if (!out) throw RuntimeError("failed writing trace json: " + path);
}

Span::Span(const char* name, const char* cat) noexcept
    : name_(name), cat_(cat) {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  ThreadBuf& buf = local_buf(*tracer.impl_);
  id_ = tracer.next_span_id();
  parent_ = buf.stack.empty() ? 0 : buf.stack.back();
  depth_ = static_cast<std::uint32_t>(buf.stack.size());
  buf.stack.push_back(id_);
  start_ns_ = now_ns();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = now_ns();
  Tracer& tracer = Tracer::instance();
  ThreadBuf& buf = local_buf(*tracer.impl_);
  // Scoped usage guarantees LIFO; tolerate a mismatched stack (e.g.
  // after Tracer::clear() mid-span) rather than corrupting it.
  if (!buf.stack.empty() && buf.stack.back() == id_) buf.stack.pop_back();
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ts_ns = start_ns_;
  ev.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  ev.tid = buf.tid;
  ev.depth = depth_;
  ev.id = id_;
  ev.parent = parent_;
  tracer.record(ev);
}

}  // namespace sickle::obs
