// Top-level observability surface: the options struct the config
// driver fills from the `observability:` section, plus apply/finalize
// helpers for tools (enable at startup, export artifacts at exit) and a
// human-readable metrics summary table.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle::obs {

/// Parsed `observability:` config section (see docs/OBSERVABILITY.md).
struct ObsOptions {
  bool enabled = false;       // master switch; zero overhead when false
  std::string trace_path;     // Chrome trace-event JSON, "" = don't write
  std::string metrics_path;   // registry snapshot JSON, "" = don't write
};

/// Enable/disable the layer per `opts.enabled`. Call before the run.
void apply(const ObsOptions& opts);

/// Export whatever the options ask for (trace and/or metrics files).
/// No-op for empty paths. Call after the run.
void finalize(const ObsOptions& opts);

/// Aligned "name  value" lines of the global registry snapshot, sorted
/// by name; "" when the registry is empty. Tools print this as the
/// metrics summary table.
[[nodiscard]] std::string summary_table();

}  // namespace sickle::obs
