#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json_escape.hpp"

namespace sickle::obs {

using detail::json_escape;

namespace {

// %.17g round-trips doubles exactly; trim to a plain decimal when the
// value is integral so counter exports stay human-readable.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Histogram::atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented destructors may publish during
  // static teardown, after function-local statics would have died.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry& MetricsRegistry::resolve(const std::string& name,
                                                 Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw RuntimeError("metric '" + name +
                       "' already registered as a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *resolve(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *resolve(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *resolve(name, Kind::kHistogram).histogram;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out[name] = static_cast<double>(e.counter->value());
        break;
      case Kind::kGauge:
        out[name] = e.gauge->value();
        break;
      case Kind::kHistogram:
        out[name + ".count"] = static_cast<double>(e.histogram->count());
        out[name + ".sum"] = e.histogram->sum();
        out[name + ".min"] = e.histogram->min();
        out[name + ".max"] = e.histogram->max();
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : snap) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << json_escape(name) << "\": " << format_value(value);
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw RuntimeError("cannot open metrics path: " + path);
  out << to_json();
  if (!out) throw RuntimeError("failed writing metrics json: " + path);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

}  // namespace sickle::obs
