// Process-wide metrics registry: named atomic counters, gauges, and
// histograms with snapshot-to-JSON export (ROADMAP D2: the exported
// metrics endpoint sickle-as-a-service will serve).
//
// Design notes:
//  - Instrument handles (`Counter&`, `Gauge&`, `Histogram&`) are stable
//    for the registry's lifetime, so hot paths resolve a name once
//    (typically into a function-local `static`) and then touch only the
//    atomics — no lock, no map lookup per event.
//  - All mutation uses relaxed atomics: metrics are monotonic tallies
//    read at quiescent points (snapshot/export), not synchronization.
//  - The `global()` registry is intentionally leaked so instrumented
//    destructors that run during static teardown (thread pools, cached
//    readers) can still publish.
//
// Naming scheme (see docs/OBSERVABILITY.md): dotted lowercase paths,
// `<subsystem>.<object>.<what>`, units spelled out in the final segment
// (`_seconds`, `_bytes`) — e.g. `store.cache.hits`,
// `pool.queue_wait_seconds`, `codec.decode_seconds`.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sickle::obs {

/// Monotonic event tally.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-or-accumulated double (e.g. accumulated busy seconds,
/// current resident bytes). `add` is a CAS loop: portable lock-free
/// double accumulation without relying on atomic<double>::fetch_add.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming count/sum/min/max summary of observed values. Exported as
/// four derived series: `<name>.count`, `.sum`, `.min`, `.max`.
class Histogram {
 public:
  void observe(double v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, v);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0.0 when no values were observed.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  void reset() noexcept;

 private:
  static void atomic_add(std::atomic<double>& a, double v) noexcept;
  static void atomic_min(std::atomic<double>& a, double v) noexcept;
  static void atomic_max(std::atomic<double>& a, double v) noexcept;

  // Infinity sentinels make seeding race-free: any observed value wins
  // the first CAS. min()/max() clamp them back to 0.0 while empty.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name -> instrument map. Resolution (`counter()`/`gauge()`/
/// `histogram()`) takes a mutex; returned references stay valid until
/// the registry is destroyed, so callers cache them.
class MetricsRegistry {
 public:
  /// The process-global default instance (leaked, never destroyed).
  static MetricsRegistry& global();

  /// Find-or-create. Throws RuntimeError if `name` is already registered
  /// as a different instrument kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Flat name -> value view, sorted by name. Histograms expand into
  /// `.count` / `.sum` / `.min` / `.max` entries.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// `{"metrics": {name: value, ...}}`, names sorted, one entry per
  /// line — stable across runs for diffing.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path` (throws RuntimeError on I/O failure).
  void write_json(const std::string& path) const;

  /// Zero every instrument (handles stay valid). Test hook.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& resolve(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sickle::obs
