#include "sampling/temporal.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::sampling {

std::vector<std::vector<double>> snapshot_pmfs(
    const field::SeriesSource& series, const TemporalConfig& cfg) {
  const std::size_t n = series.num_snapshots();
  SICKLE_CHECK_MSG(n > 0, "empty series");
  // Pass 1: global range, so JS distances are comparable across
  // snapshots. Sources with index-resident summaries (SKL3 v2) answer
  // this from metadata, turning cold-store selection into a single pass
  // over the payload. For lossless codecs the summary min/max equal what
  // the scan would compute, so the range and every downstream PMF are
  // bit-identical; for quant the summary describes pre-encode values
  // (within codec tolerance — histogram binning clamps, so PMFs stay
  // well-defined). Sources without summaries fall back to the full scan.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool summarized = true;
  for (std::size_t t = 0; t < n && summarized; ++t) {
    if (const auto r = series.value_range(t, cfg.variable)) {
      lo = std::min(lo, r->min);
      hi = std::max(hi, r->max);
    } else {
      summarized = false;
    }
  }
  if (!summarized) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      field::for_each_flat_batch(series.source(t), cfg.variable,
                                 [&](std::span<const double> vals) {
                                   for (const double x : vals) {
                                     lo = std::min(lo, x);
                                     hi = std::max(hi, x);
                                   }
                                 });
    }
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  // Pass 2: per-snapshot histograms over the shared range.
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    stats::Histogram h(lo, hi, cfg.bins);
    field::for_each_flat_batch(
        series.source(t), cfg.variable,
        [&](std::span<const double> vals) { h.add(vals); });
    pmfs.push_back(h.pmf());
  }
  return pmfs;
}

std::vector<std::size_t> select_snapshots(const field::SeriesSource& series,
                                          const TemporalConfig& cfg) {
  const auto pmfs = snapshot_pmfs(series, cfg);
  const std::size_t n = pmfs.size();
  const std::size_t k = std::min(cfg.num_snapshots, n);

  std::vector<std::size_t> selected{0};
  std::vector<bool> taken(n, false);
  taken[0] = true;
  // min distance from each snapshot to the selected set
  std::vector<double> min_dist(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    if (!taken[t]) {
      min_dist[t] = stats::js_divergence(std::span<const double>(pmfs[t]),
                                         std::span<const double>(pmfs[0]));
    }
  }
  while (selected.size() < k) {
    // Farthest-point (max-min) greedy step.
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!taken[t] && min_dist[t] > best_d) {
        best_d = min_dist[t];
        best = t;
      }
    }
    taken[best] = true;
    selected.push_back(best);
    for (std::size_t t = 0; t < n; ++t) {
      if (taken[t]) continue;
      min_dist[t] = std::min(
          min_dist[t],
          stats::js_divergence(std::span<const double>(pmfs[t]),
                               std::span<const double>(pmfs[best])));
    }
  }
  return selected;
}

std::vector<std::size_t> select_snapshots(const field::Dataset& dataset,
                                          const TemporalConfig& cfg) {
  return select_snapshots(field::DatasetSeriesSource(dataset), cfg);
}

std::vector<double> snapshot_novelty(const field::SeriesSource& series,
                                     const TemporalConfig& cfg,
                                     std::size_t reference) {
  const auto pmfs = snapshot_pmfs(series, cfg);
  SICKLE_CHECK(reference < pmfs.size());
  std::vector<double> out;
  out.reserve(pmfs.size());
  for (const auto& p : pmfs) {
    out.push_back(stats::js_divergence(std::span<const double>(p),
                                       std::span<const double>(pmfs[reference])));
  }
  return out;
}

std::vector<double> snapshot_novelty(const field::Dataset& dataset,
                                     const TemporalConfig& cfg,
                                     std::size_t reference) {
  return snapshot_novelty(field::DatasetSeriesSource(dataset), cfg,
                          reference);
}

}  // namespace sickle::sampling
