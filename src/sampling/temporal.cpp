#include "sampling/temporal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::sampling {

std::vector<std::vector<double>> snapshot_pmfs(
    const field::SeriesSource& series, const TemporalConfig& cfg) {
  const std::size_t n = series.num_snapshots();
  SICKLE_CHECK_MSG(n > 0, "empty series");
  // Pass 1: global range, so JS distances are comparable across
  // snapshots. Sources with index-resident summaries (SKL3 v2) answer
  // this from metadata, turning cold-store selection into a single pass
  // over the payload. For lossless codecs the summary min/max equal what
  // the scan would compute, so the range and every downstream PMF are
  // bit-identical; for quant the summary describes pre-encode values
  // (within codec tolerance — histogram binning clamps, so PMFs stay
  // well-defined). Sources without summaries fall back to the full scan.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool summarized = true;
  for (std::size_t t = 0; t < n && summarized; ++t) {
    if (const auto r = series.value_range(t, cfg.variable)) {
      lo = std::min(lo, r->min);
      hi = std::max(hi, r->max);
    } else {
      summarized = false;
    }
  }
  if (!summarized) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      field::for_each_flat_batch(series.source(t), cfg.variable,
                                 [&](std::span<const double> vals) {
                                   for (const double x : vals) {
                                     lo = std::min(lo, x);
                                     hi = std::max(hi, x);
                                   }
                                 });
    }
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  // Pass 2: per-snapshot histograms over the shared range.
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    stats::Histogram h(lo, hi, cfg.bins);
    field::for_each_flat_batch(
        series.source(t), cfg.variable,
        [&](std::span<const double> vals) { h.add(vals); });
    pmfs.push_back(h.pmf());
  }
  return pmfs;
}

namespace {

/// Farthest-point (max-min JS) greedy over a PMF set, starting at
/// position 0. Returns positions in selection order — the single greedy
/// kernel behind both the coarse seeding stage and the exact refinement.
std::vector<std::size_t> greedy_maxmin(
    const std::vector<std::vector<double>>& pmfs, std::size_t k) {
  const std::size_t n = pmfs.size();
  std::vector<std::size_t> selected{0};
  std::vector<bool> taken(n, false);
  taken[0] = true;
  // min distance from each snapshot to the selected set
  std::vector<double> min_dist(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    if (!taken[t]) {
      min_dist[t] = stats::js_divergence(std::span<const double>(pmfs[t]),
                                         std::span<const double>(pmfs[0]));
    }
  }
  while (selected.size() < k) {
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!taken[t] && min_dist[t] > best_d) {
        best_d = min_dist[t];
        best = t;
      }
    }
    taken[best] = true;
    selected.push_back(best);
    for (std::size_t t = 0; t < n; ++t) {
      if (taken[t]) continue;
      min_dist[t] = std::min(
          min_dist[t],
          stats::js_divergence(std::span<const double>(pmfs[t]),
                               std::span<const double>(pmfs[best])));
    }
  }
  return selected;
}

/// Per-snapshot exact range + canonical coarse histogram, answered from
/// the index (SKL3 v4: zero payload decodes) or scanned through the
/// exact same stats::Histogram kernel the writer used — the
/// field::kCoarseHistogramBins contract — so either path yields
/// bit-identical counts under lossless codecs.
struct CoarseSummaries {
  std::vector<field::VarRange> ranges;
  std::vector<std::vector<std::uint64_t>> counts;
};

CoarseSummaries coarse_summaries(const field::SeriesSource& series,
                                 const std::string& var) {
  const std::size_t n = series.num_snapshots();
  CoarseSummaries out;
  out.ranges.resize(n);
  out.counts.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const auto r = series.value_range(t, var);
    if (r) {
      if (auto h = series.coarse_histogram(t, var)) {
        out.ranges[t] = *r;
        out.counts[t] = std::move(*h);
        continue;
      }
    }
    // Scan fallback. The range comes from the index when available (v2/v3:
    // one payload pass) or its own NaN-skipping scan (v1/memory: two).
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    if (r) {
      lo = r->min;
      hi = r->max;
    } else {
      field::for_each_flat_batch(series.source(t), var,
                                 [&](std::span<const double> vals) {
                                   for (const double x : vals) {
                                     lo = std::min(lo, x);
                                     hi = std::max(hi, x);
                                   }
                                 });
    }
    out.ranges[t] = {lo, hi};
    if (!(hi > lo)) {
      lo -= 0.5;
      hi += 0.5;
    }
    if (std::isfinite(lo) && std::isfinite(hi) && hi > lo) {
      stats::Histogram h(lo, hi, field::kCoarseHistogramBins);
      field::for_each_flat_batch(
          series.source(t), var,
          [&](std::span<const double> vals) { h.add(vals); });
      out.counts[t].assign(h.counts().begin(), h.counts().end());
    } else {
      out.counts[t].assign(field::kCoarseHistogramBins, 0);
    }
  }
  return out;
}

}  // namespace

std::vector<std::size_t> select_snapshots(const field::SeriesSource& series,
                                          const TemporalConfig& cfg) {
  const std::size_t n = series.num_snapshots();
  SICKLE_CHECK_MSG(n > 0, "empty series");
  const std::size_t k = std::min(cfg.num_snapshots, n);
  const std::size_t m =
      std::min(n, std::max(k, cfg.refine_factor * cfg.num_snapshots));
  if (m >= n) {
    // Candidates cover the series: the refinement pass IS a full exact
    // pass, so run the legacy single-stage greedy directly (bit-identical
    // result, and snapshot_pmfs already exploits index ranges).
    return greedy_maxmin(snapshot_pmfs(series, cfg), k);
  }

  // Stage 1 — seed: coarse per-snapshot histograms (index-resident on
  // SKL3 v4, else scanned), rebinned from each snapshot's own range onto
  // the shared global range by bin center, rank novelty approximately.
  const CoarseSummaries cs = coarse_summaries(series, cfg.variable);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& r : cs.ranges) {
    lo = std::min(lo, r.min);
    hi = std::max(hi, r.max);
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  const stats::Histogram ref(lo, hi, cfg.bins);  // bin mapping only
  std::vector<std::vector<double>> approx(n);
  for (std::size_t t = 0; t < n; ++t) {
    approx[t].assign(cfg.bins, 0.0);
    double slo = cs.ranges[t].min;
    double shi = cs.ranges[t].max;
    if (!(shi > slo)) {
      slo -= 0.5;
      shi += 0.5;
    }
    const double cw =
        (shi - slo) / static_cast<double>(field::kCoarseHistogramBins);
    std::uint64_t total = 0;
    for (const std::uint64_t c : cs.counts[t]) total += c;
    if (total == 0) continue;  // all-NaN snapshot: zero PMF, like a scan
    for (std::size_t i = 0; i < field::kCoarseHistogramBins; ++i) {
      if (cs.counts[t][i] == 0) continue;
      const double center = slo + (static_cast<double>(i) + 0.5) * cw;
      approx[t][ref.bin_of(center)] +=
          static_cast<double>(cs.counts[t][i]);
    }
    const double inv = 1.0 / static_cast<double>(total);
    for (double& p : approx[t]) p *= inv;
  }
  std::vector<std::size_t> candidates = greedy_maxmin(approx, m);
  // Ascending order makes the refinement deterministic AND keeps snapshot
  // 0 (always seeded) at position 0 so the exact greedy starts there,
  // matching the legacy algorithm's anchor.
  std::sort(candidates.begin(), candidates.end());

  // Stage 2 — refine: ONE exact streamed PMF pass over the candidates
  // only (the first payload decodes on a sealed v4 series), then the
  // exact greedy restricted to them picks the final k.
  std::vector<std::vector<double>> exact;
  exact.reserve(candidates.size());
  for (const std::size_t t : candidates) {
    stats::Histogram h(lo, hi, cfg.bins);
    field::for_each_flat_batch(
        series.source(t), cfg.variable,
        [&](std::span<const double> vals) { h.add(vals); });
    exact.push_back(h.pmf());
  }
  const std::vector<std::size_t> picks = greedy_maxmin(exact, k);
  std::vector<std::size_t> selected;
  selected.reserve(picks.size());
  for (const std::size_t p : picks) selected.push_back(candidates[p]);
  return selected;
}

std::vector<std::size_t> select_snapshots(const field::Dataset& dataset,
                                          const TemporalConfig& cfg) {
  return select_snapshots(field::DatasetSeriesSource(dataset), cfg);
}

std::vector<double> snapshot_novelty(const field::SeriesSource& series,
                                     const TemporalConfig& cfg,
                                     std::size_t reference) {
  const auto pmfs = snapshot_pmfs(series, cfg);
  SICKLE_CHECK(reference < pmfs.size());
  std::vector<double> out;
  out.reserve(pmfs.size());
  for (const auto& p : pmfs) {
    out.push_back(stats::js_divergence(std::span<const double>(p),
                                       std::span<const double>(pmfs[reference])));
  }
  return out;
}

std::vector<double> snapshot_novelty(const field::Dataset& dataset,
                                     const TemporalConfig& cfg,
                                     std::size_t reference) {
  return snapshot_novelty(field::DatasetSeriesSource(dataset), cfg,
                          reference);
}

}  // namespace sickle::sampling
