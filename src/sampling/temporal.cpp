#include "sampling/temporal.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::sampling {

namespace {

/// Shared-range PMFs: all snapshots binned over the global min/max so JS
/// distances are comparable.
std::vector<std::vector<double>> snapshot_pmfs(const field::Dataset& dataset,
                                               const TemporalConfig& cfg) {
  SICKLE_CHECK_MSG(dataset.num_snapshots() > 0, "empty dataset");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < dataset.num_snapshots(); ++t) {
    const auto [l, h] =
        min_max(dataset.snapshot(t).get(cfg.variable).data());
    lo = std::min(lo, l);
    hi = std::max(hi, h);
  }
  if (!(hi > lo)) {
    lo -= 0.5;
    hi += 0.5;
  }
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(dataset.num_snapshots());
  for (std::size_t t = 0; t < dataset.num_snapshots(); ++t) {
    stats::Histogram h(lo, hi, cfg.bins);
    h.add(dataset.snapshot(t).get(cfg.variable).data());
    pmfs.push_back(h.pmf());
  }
  return pmfs;
}

}  // namespace

std::vector<std::size_t> select_snapshots(const field::Dataset& dataset,
                                          const TemporalConfig& cfg) {
  const auto pmfs = snapshot_pmfs(dataset, cfg);
  const std::size_t n = pmfs.size();
  const std::size_t k = std::min(cfg.num_snapshots, n);

  std::vector<std::size_t> selected{0};
  std::vector<bool> taken(n, false);
  taken[0] = true;
  // min distance from each snapshot to the selected set
  std::vector<double> min_dist(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    if (!taken[t]) {
      min_dist[t] = stats::js_divergence(std::span<const double>(pmfs[t]),
                                         std::span<const double>(pmfs[0]));
    }
  }
  while (selected.size() < k) {
    // Farthest-point (max-min) greedy step.
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!taken[t] && min_dist[t] > best_d) {
        best_d = min_dist[t];
        best = t;
      }
    }
    taken[best] = true;
    selected.push_back(best);
    for (std::size_t t = 0; t < n; ++t) {
      if (taken[t]) continue;
      min_dist[t] = std::min(
          min_dist[t],
          stats::js_divergence(std::span<const double>(pmfs[t]),
                               std::span<const double>(pmfs[best])));
    }
  }
  return selected;
}

std::vector<double> snapshot_novelty(const field::Dataset& dataset,
                                     const TemporalConfig& cfg,
                                     std::size_t reference) {
  const auto pmfs = snapshot_pmfs(dataset, cfg);
  SICKLE_CHECK(reference < pmfs.size());
  std::vector<double> out;
  out.reserve(pmfs.size());
  for (const auto& p : pmfs) {
    out.push_back(stats::js_divergence(std::span<const double>(p),
                                       std::span<const double>(pmfs[reference])));
  }
  return out;
}

}  // namespace sickle::sampling
