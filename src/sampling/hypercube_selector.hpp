/// @file hypercube_selector.hpp
/// @brief Phase-1 hypercube selection (the paper's H* methods).
///
/// Hrandom draws cubes uniformly; Hmaxent follows Fig. 3's left column:
///   1. MiniBatchKMeans on the cluster variable over the whole snapshot
///      (subsampled for tractability);
///   2. per-cube PMFs over the cluster labels;
///   3. KL adjacency between cube distributions, node strengths (Eq. 2);
///   4. entropy/strength-weighted random draw of num_hypercubes cubes.
///
/// The SPMD variant decomposes step 2 over ranks (each rank owns a block of
/// cubes), allgathers the PMFs, and every rank performs the identical
/// weighted draw — making the selection independent of rank count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "energy/energy.hpp"
#include "field/field_source.hpp"
#include "field/hypercube.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/world.hpp"

namespace sickle::sampling {

struct HypercubeSelectorConfig {
  std::string method = "maxent";    ///< "random" | "maxent" | "entropy"
  std::size_t num_hypercubes = 32;
  std::string cluster_var;
  std::size_t num_clusters = 20;
  std::size_t cluster_subsample = 65536;  ///< points used to fit k-means
  std::uint64_t seed = 0;
  energy::EnergyCounter* energy = nullptr;
  /// Pool for the fused cube-scoring fan-out (label counting + KL rows);
  /// nullptr runs serial. Selections are bit-identical either way: the
  /// clustering fit (all RNG consumption) happens before the fan-out and
  /// every cube/row reduces into its own slot. A pooled run gathers from
  /// the source concurrently, so the source must be thread-safe (Snapshot
  /// sources are read-only; store::ChunkReader shards its cache).
  ThreadPool* pool = nullptr;
};

/// Select cube flat-ids from the tiling of `snap`. Serial entry point.
[[nodiscard]] std::vector<std::size_t> select_hypercubes(
    const field::Snapshot& snap, const field::CubeTiling& tiling,
    const HypercubeSelectorConfig& cfg);

/// Source-based serial entry point: identical selection to the Snapshot
/// overload for equal data (the Snapshot overload delegates here). Values
/// are fetched with FieldSource::gather, so a chunked on-disk source never
/// materializes the whole grid.
[[nodiscard]] std::vector<std::size_t> select_hypercubes(
    const field::FieldSource& src, const field::CubeTiling& tiling,
    const HypercubeSelectorConfig& cfg);

/// SPMD entry point: must be called by every rank of `comm` collectively;
/// all ranks return the identical selection.
[[nodiscard]] std::vector<std::size_t> select_hypercubes(
    const field::Snapshot& snap, const field::CubeTiling& tiling,
    const HypercubeSelectorConfig& cfg, Comm& comm);

/// Per-cube node strengths (exposed for tests/ablation): strength[i] is the
/// KL row sum of cube i's cluster-label PMF against all other cubes.
[[nodiscard]] std::vector<double> hypercube_strengths(
    const field::Snapshot& snap, const field::CubeTiling& tiling,
    const HypercubeSelectorConfig& cfg);

[[nodiscard]] std::vector<double> hypercube_strengths(
    const field::FieldSource& src, const field::CubeTiling& tiling,
    const HypercubeSelectorConfig& cfg);

}  // namespace sickle::sampling
