/// @file temporal.hpp
/// @brief Temporal snapshot selection (paper §4.3).
///
/// Periodic flows (e.g. OF2D's vortex shedding) produce snapshots whose
/// input PDFs repeat; training on all of them adds no information. The
/// temporal sampler scores each snapshot's input PDF against the already
/// selected set and keeps only snapshots that expand coverage:
/// greedy max-min Jensen–Shannon selection.
///
/// Selection runs over any field::SeriesSource — an in-memory Dataset or
/// a chunked on-disk store::SeriesReader — through one shared histogram
/// kernel, so the streamed and in-memory paths return bit-identical
/// snapshot indices for equal data (the Dataset overloads are thin
/// adapters). Memory is O(bins * snapshots) plus one gather batch, never
/// the grid.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/field_source.hpp"

namespace sickle::sampling {

struct TemporalConfig {
  std::string variable;        ///< variable whose PDF drives novelty
  std::size_t num_snapshots = 10;  ///< snapshots to keep
  std::size_t bins = 100;
};

/// Shared-range per-snapshot PMFs of cfg.variable: all snapshots binned
/// over the global min/max so JS distances are comparable. Streams each
/// snapshot in flat-order gather batches — the single histogram kernel
/// behind every select_snapshots overload. When the source carries
/// index-resident summaries (SeriesSource::value_range, SKL3 v2), the
/// range pass reads metadata instead of the payload and the whole job is
/// ONE streaming pass; otherwise it is two (range, then bins). For
/// lossless codecs both paths produce bit-identical PMFs, since the
/// summaries are exact min/max of the values the scan would see; for the
/// lossy quant codec summaries describe pre-encode values, so the shared
/// range (and hence the selection) may differ from a decoded-value scan
/// by up to the codec tolerance.
[[nodiscard]] std::vector<std::vector<double>> snapshot_pmfs(
    const field::SeriesSource& series, const TemporalConfig& cfg);

/// Greedy selection: start from the first snapshot, repeatedly add the
/// snapshot whose PDF is farthest (min-JS over selected) from the current
/// set. Returns selected snapshot indices in selection order.
[[nodiscard]] std::vector<std::size_t> select_snapshots(
    const field::SeriesSource& series, const TemporalConfig& cfg);

/// In-memory adapter: identical indices to the SeriesSource overload on
/// equal data (it delegates through field::DatasetSeriesSource).
[[nodiscard]] std::vector<std::size_t> select_snapshots(
    const field::Dataset& dataset, const TemporalConfig& cfg);

/// Per-snapshot novelty scores against a fixed reference snapshot's PDF
/// (exposed for diagnostics and tests).
[[nodiscard]] std::vector<double> snapshot_novelty(
    const field::SeriesSource& series, const TemporalConfig& cfg,
    std::size_t reference = 0);

[[nodiscard]] std::vector<double> snapshot_novelty(
    const field::Dataset& dataset, const TemporalConfig& cfg,
    std::size_t reference = 0);

}  // namespace sickle::sampling
