/// @file temporal.hpp
/// @brief Temporal snapshot selection (paper §4.3).
///
/// Periodic flows (e.g. OF2D's vortex shedding) produce snapshots whose
/// input PDFs repeat; training on all of them adds no information. The
/// temporal sampler scores each snapshot's input PDF against the already
/// selected set and keeps only snapshots that expand coverage:
/// greedy max-min Jensen–Shannon selection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "field/field.hpp"

namespace sickle::sampling {

struct TemporalConfig {
  std::string variable;        ///< variable whose PDF drives novelty
  std::size_t num_snapshots = 10;  ///< snapshots to keep
  std::size_t bins = 100;
};

/// Greedy selection: start from the first snapshot, repeatedly add the
/// snapshot whose PDF is farthest (min-JS over selected) from the current
/// set. Returns selected snapshot indices in selection order.
[[nodiscard]] std::vector<std::size_t> select_snapshots(
    const field::Dataset& dataset, const TemporalConfig& cfg);

/// Per-snapshot novelty scores against a fixed reference snapshot's PDF
/// (exposed for diagnostics and tests).
[[nodiscard]] std::vector<double> snapshot_novelty(
    const field::Dataset& dataset, const TemporalConfig& cfg,
    std::size_t reference = 0);

}  // namespace sickle::sampling
