/// @file temporal.hpp
/// @brief Temporal snapshot selection (paper §4.3).
///
/// Periodic flows (e.g. OF2D's vortex shedding) produce snapshots whose
/// input PDFs repeat; training on all of them adds no information. The
/// temporal sampler scores each snapshot's input PDF against the already
/// selected set and keeps only snapshots that expand coverage:
/// greedy max-min Jensen–Shannon selection.
///
/// Selection runs over any field::SeriesSource — an in-memory Dataset or
/// a chunked on-disk store::SeriesReader — through one shared histogram
/// kernel, so the streamed and in-memory paths return bit-identical
/// snapshot indices for equal data (the Dataset overloads are thin
/// adapters). Memory is O(bins * snapshots) plus one gather batch, never
/// the grid.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/field_source.hpp"

namespace sickle::sampling {

struct TemporalConfig {
  std::string variable;        ///< variable whose PDF drives novelty
  std::size_t num_snapshots = 10;  ///< snapshots to keep
  std::size_t bins = 100;
  /// Seed-and-refine candidate slack: the coarse seeding stage keeps
  /// min(n, max(k, refine_factor * k)) candidates for the exact
  /// refinement pass (k = num_snapshots). When the candidate set covers
  /// the whole series (refine_factor * k >= n) selection is exactly the
  /// legacy single-stage greedy; smaller candidate sets trade a slightly
  /// different (still deterministic, backend-independent) selection for
  /// proportionally less payload I/O.
  std::size_t refine_factor = 2;
};

/// Shared-range per-snapshot PMFs of cfg.variable: all snapshots binned
/// over the global min/max so JS distances are comparable. Streams each
/// snapshot in flat-order gather batches — the single histogram kernel
/// behind every select_snapshots overload. When the source carries
/// index-resident summaries (SeriesSource::value_range, SKL3 v2), the
/// range pass reads metadata instead of the payload and the whole job is
/// ONE streaming pass; otherwise it is two (range, then bins). For
/// lossless codecs both paths produce bit-identical PMFs, since the
/// summaries are exact min/max of the values the scan would see; for the
/// lossy quant codec summaries describe pre-encode values, so the shared
/// range (and hence the selection) may differ from a decoded-value scan
/// by up to the codec tolerance.
[[nodiscard]] std::vector<std::vector<double>> snapshot_pmfs(
    const field::SeriesSource& series, const TemporalConfig& cfg);

/// Greedy selection: start from the first snapshot, repeatedly add the
/// snapshot whose PDF is farthest (min-JS over selected) from the current
/// set. Returns selected snapshot indices in selection order.
///
/// Runs as seed-then-refine (the exactness-vs-refinement contract):
/// (1) coarse per-snapshot histograms — read from the index when the
/// source carries them (SeriesSource::coarse_histogram + value_range,
/// SKL3 v4: ZERO payload decodes), else streamed — are rebinned onto the
/// shared range and an approximate greedy keeps min(n, max(k,
/// refine_factor * k)) candidates; (2) one exact streamed PMF pass over
/// the candidates only, then the exact greedy restricted to them picks
/// the final k. Every stage is deterministic and uses the same canonical
/// coarse kernel whether summaries come from the index or a scan, so all
/// backends (in-memory, SKL3 v1-v4, SKL2 spill) return identical indices
/// for equal data under lossless codecs. When the candidate set covers
/// the series the result is bit-identical to the legacy single-stage
/// exact greedy.
[[nodiscard]] std::vector<std::size_t> select_snapshots(
    const field::SeriesSource& series, const TemporalConfig& cfg);

/// In-memory adapter: identical indices to the SeriesSource overload on
/// equal data (it delegates through field::DatasetSeriesSource).
[[nodiscard]] std::vector<std::size_t> select_snapshots(
    const field::Dataset& dataset, const TemporalConfig& cfg);

/// Per-snapshot novelty scores against a fixed reference snapshot's PDF
/// (exposed for diagnostics and tests).
[[nodiscard]] std::vector<double> snapshot_novelty(
    const field::SeriesSource& series, const TemporalConfig& cfg,
    std::size_t reference = 0);

[[nodiscard]] std::vector<double> snapshot_novelty(
    const field::Dataset& dataset, const TemporalConfig& cfg,
    std::size_t reference = 0);

}  // namespace sickle::sampling
