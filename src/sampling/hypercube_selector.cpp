#include "sampling/hypercube_selector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/kmeans.hpp"
#include "sampling/point_samplers.hpp"
#include "stats/entropy.hpp"

namespace sickle::sampling {

namespace {

/// Fit 1D k-means to (a subsample of) the cluster variable. RNG consumption
/// matches the historical in-memory implementation exactly (indices are
/// drawn first, values gathered after), so Snapshot- and store-backed runs
/// select identical clusterings.
cluster::KMeansResult fit_clusters(const field::FieldSource& src,
                                   const HypercubeSelectorConfig& cfg,
                                   Rng& rng) {
  cluster::KMeansOptions opts;
  opts.k = std::max<std::size_t>(2, cfg.num_clusters);
  opts.max_iterations = 50;
  const std::size_t n = src.shape().size();
  if (n <= cfg.cluster_subsample) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    const auto cv = src.gather(cfg.cluster_var,
                               std::span<const std::size_t>(all));
    return cluster::minibatch_kmeans(std::span<const double>(cv), n, 1, opts,
                                     rng);
  }
  std::vector<std::size_t> pick(cfg.cluster_subsample);
  for (std::size_t& i : pick) i = rng.uniform_int(n);
  const auto sub = src.gather(cfg.cluster_var,
                              std::span<const std::size_t>(pick));
  return cluster::minibatch_kmeans(std::span<const double>(sub), sub.size(),
                                   1, opts, rng);
}

/// PMF of cluster labels for the points of one cube.
std::vector<double> cube_label_pmf(const field::FieldSource& src,
                                   const field::CubeTiling& tiling,
                                   std::size_t cube_id,
                                   const cluster::KMeansResult& clusters,
                                   const std::string& cluster_var) {
  const auto indices = tiling.point_indices(tiling.coord(cube_id));
  const auto values =
      src.gather(cluster_var, std::span<const std::size_t>(indices));
  std::vector<double> pmf(clusters.k, 0.0);
  for (const double v : values) {
    pmf[clusters.assign(std::span<const double>(&v, 1))] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(indices.size());
  for (double& p : pmf) p *= inv;
  return pmf;
}

/// Strengths from the gathered per-cube PMFs: KL row sums (Eq. 2).
std::vector<double> strengths_from_pmfs(
    const std::vector<std::vector<double>>& pmfs) {
  const auto adjacency =
      stats::kl_adjacency(std::span<const std::vector<double>>(pmfs));
  return stats::node_strengths(std::span<const double>(adjacency),
                               pmfs.size());
}

/// Per-cube Shannon entropy of the label PMF — the "entropy" weighting
/// ablation (DESIGN.md §6).
std::vector<double> entropies_from_pmfs(
    const std::vector<std::vector<double>>& pmfs) {
  std::vector<double> out;
  out.reserve(pmfs.size());
  for (const auto& p : pmfs) {
    out.push_back(stats::shannon_entropy(std::span<const double>(p)));
  }
  return out;
}

std::vector<std::size_t> draw_cubes(std::span<const double> weights,
                                    std::size_t num, Rng& rng) {
  const std::size_t n = weights.size();
  const std::size_t k = std::min(num, n);
  // Guard against all-zero weights (uniform fallback).
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) {
    return rng.sample_without_replacement(n, k);
  }
  return weighted_sample_without_replacement(weights, k, rng);
}

void tally_scan(const HypercubeSelectorConfig& cfg, std::size_t points) {
  if (cfg.energy == nullptr) return;
  cfg.energy->add_bytes(static_cast<double>(points) * sizeof(double));
  cfg.energy->add_flops(static_cast<double>(points) *
                        static_cast<double>(cfg.num_clusters));
}

}  // namespace

std::vector<double> hypercube_strengths(const field::FieldSource& src,
                                        const field::CubeTiling& tiling,
                                        const HypercubeSelectorConfig& cfg) {
  Rng rng(cfg.seed, /*stream=*/0x4C);
  const auto clusters = fit_clusters(src, cfg, rng);
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(tiling.count());
  for (std::size_t c = 0; c < tiling.count(); ++c) {
    pmfs.push_back(cube_label_pmf(src, tiling, c, clusters,
                                  cfg.cluster_var));
  }
  tally_scan(cfg, src.shape().size());
  return strengths_from_pmfs(pmfs);
}

std::vector<double> hypercube_strengths(const field::Snapshot& snap,
                                        const field::CubeTiling& tiling,
                                        const HypercubeSelectorConfig& cfg) {
  return hypercube_strengths(field::SnapshotSource(snap), tiling, cfg);
}

std::vector<std::size_t> select_hypercubes(const field::FieldSource& src,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg) {
  Rng rng(cfg.seed, /*stream=*/0xD1);
  const std::size_t n = tiling.count();
  const std::size_t k = std::min(cfg.num_hypercubes, n);
  if (cfg.method == "random") {
    tally_scan(cfg, 0);
    return rng.sample_without_replacement(n, k);
  }
  SICKLE_CHECK_MSG(cfg.method == "maxent" || cfg.method == "entropy",
                   "unknown hypercube method: " + cfg.method);
  Rng fit_rng(cfg.seed, /*stream=*/0xF17);
  const auto clusters = fit_clusters(src, cfg, fit_rng);
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    pmfs.push_back(cube_label_pmf(src, tiling, c, clusters,
                                  cfg.cluster_var));
  }
  tally_scan(cfg, src.shape().size());
  const std::vector<double> weights = (cfg.method == "maxent")
                                          ? strengths_from_pmfs(pmfs)
                                          : entropies_from_pmfs(pmfs);
  return draw_cubes(std::span<const double>(weights), k, rng);
}

std::vector<std::size_t> select_hypercubes(const field::Snapshot& snap,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg) {
  return select_hypercubes(field::SnapshotSource(snap), tiling, cfg);
}

std::vector<std::size_t> select_hypercubes(const field::Snapshot& snap,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg,
                                           Comm& comm) {
  Rng rng(cfg.seed, /*stream=*/0xD1);
  const std::size_t n = tiling.count();
  const std::size_t k = std::min(cfg.num_hypercubes, n);
  if (cfg.method == "random") {
    // Deterministic given the seed; every rank computes the same draw.
    return rng.sample_without_replacement(n, k);
  }
  SICKLE_CHECK_MSG(cfg.method == "maxent" || cfg.method == "entropy",
                   "unknown hypercube method: " + cfg.method);

  // Root fits the clustering (as the reference does), then broadcasts the
  // centroids so labels are consistent across ranks.
  const field::SnapshotSource src(snap);
  std::vector<double> centroids;
  if (comm.is_root()) {
    Rng fit_rng(cfg.seed, /*stream=*/0xF17);
    centroids = fit_clusters(src, cfg, fit_rng).centroids;
  }
  comm.broadcast(centroids, 0);
  cluster::KMeansResult clusters;
  clusters.k = centroids.size();
  clusters.dims = 1;
  clusters.centroids = centroids;

  // Each rank computes PMFs for its block of cubes; flatten for allgather.
  const auto [begin, end] = comm.block_range(n);
  std::vector<double> local_flat;
  local_flat.reserve((end - begin) * clusters.k);
  for (std::size_t c = begin; c < end; ++c) {
    const auto pmf = cube_label_pmf(src, tiling, c, clusters,
                                    cfg.cluster_var);
    local_flat.insert(local_flat.end(), pmf.begin(), pmf.end());
  }
  if (cfg.energy != nullptr) {
    const double pts = static_cast<double>(end - begin) *
                       static_cast<double>(tiling.spec().points());
    cfg.energy->add_bytes(pts * sizeof(double));
    cfg.energy->add_flops(pts * static_cast<double>(clusters.k));
  }
  const std::vector<double> all_flat = comm.allgather(local_flat);
  SICKLE_CHECK(all_flat.size() == n * clusters.k);
  std::vector<std::vector<double>> pmfs(n);
  for (std::size_t c = 0; c < n; ++c) {
    pmfs[c].assign(all_flat.begin() + c * clusters.k,
                   all_flat.begin() + (c + 1) * clusters.k);
  }

  // The O(n_cubes^2) KL adjacency is the selector's dominant cost at
  // scale, so it is row-decomposed too: each rank reduces its block of
  // rows to node strengths (or entropies) and the strengths are
  // allgathered. Every rank then performs the identical weighted draw.
  std::vector<double> local_weights;
  local_weights.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    if (cfg.method == "maxent") {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) {
          row += stats::kl_divergence(std::span<const double>(pmfs[i]),
                                      std::span<const double>(pmfs[j]));
        }
      }
      local_weights.push_back(row);
    } else {
      local_weights.push_back(
          stats::shannon_entropy(std::span<const double>(pmfs[i])));
    }
  }
  const std::vector<double> weights = comm.allgather(local_weights);
  SICKLE_CHECK(weights.size() == n);
  // Same RNG state on all ranks -> identical selection everywhere.
  return draw_cubes(std::span<const double>(weights), k, rng);
}

}  // namespace sickle::sampling
