#include "sampling/hypercube_selector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/kmeans.hpp"
#include "sampling/cube_scoring.hpp"
#include "sampling/point_samplers.hpp"
#include "stats/entropy.hpp"

namespace sickle::sampling {

namespace {

/// Fit 1D k-means to (a subsample of) the cluster variable. RNG consumption
/// matches the historical in-memory implementation exactly (indices are
/// drawn first, values gathered after), so Snapshot- and store-backed runs
/// select identical clusterings.
cluster::KMeansResult fit_clusters(const field::FieldSource& src,
                                   const HypercubeSelectorConfig& cfg,
                                   Rng& rng) {
  cluster::KMeansOptions opts;
  opts.k = std::max<std::size_t>(2, cfg.num_clusters);
  opts.max_iterations = 50;
  const std::size_t n = src.shape().size();
  if (n <= cfg.cluster_subsample) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    const auto cv = src.gather(cfg.cluster_var,
                               std::span<const std::size_t>(all));
    return cluster::minibatch_kmeans(std::span<const double>(cv), n, 1, opts,
                                     rng);
  }
  std::vector<std::size_t> pick(cfg.cluster_subsample);
  for (std::size_t& i : pick) i = rng.uniform_int(n);
  const auto sub = src.gather(cfg.cluster_var,
                              std::span<const std::size_t>(pick));
  return cluster::minibatch_kmeans(std::span<const double>(sub), sub.size(),
                                   1, opts, rng);
}

/// Fused scoring: label counts -> PMFs -> maxent strengths or entropies.
/// All parallelism lives behind cfg.pool; weights are identical for any
/// thread count (see cube_scoring.hpp).
std::vector<double> cube_weights(const field::FieldSource& src,
                                 const field::CubeTiling& tiling,
                                 const HypercubeSelectorConfig& cfg,
                                 const cluster::KMeansResult& clusters) {
  const auto counts = count_cube_labels(src, tiling, clusters,
                                        cfg.cluster_var, cfg.pool);
  const auto pmfs = pmfs_from_counts(std::span<const std::uint32_t>(counts),
                                     clusters.k, tiling.spec().points());
  return cfg.method == "entropy"
             ? pmf_row_entropies(std::span<const double>(pmfs),
                                 tiling.count(), clusters.k)
             : kl_node_strengths(std::span<const double>(pmfs),
                                 tiling.count(), clusters.k, cfg.pool);
}

std::vector<std::size_t> draw_cubes(std::span<const double> weights,
                                    std::size_t num, Rng& rng) {
  const std::size_t n = weights.size();
  const std::size_t k = std::min(num, n);
  // Guard against all-zero weights (uniform fallback).
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) {
    return rng.sample_without_replacement(n, k);
  }
  return weighted_sample_without_replacement(weights, k, rng);
}

void tally_scan(const HypercubeSelectorConfig& cfg, std::size_t points) {
  if (cfg.energy == nullptr) return;
  cfg.energy->add_bytes(static_cast<double>(points) * sizeof(double));
  cfg.energy->add_flops(static_cast<double>(points) *
                        static_cast<double>(cfg.num_clusters));
}

}  // namespace

std::vector<double> hypercube_strengths(const field::FieldSource& src,
                                        const field::CubeTiling& tiling,
                                        const HypercubeSelectorConfig& cfg) {
  Rng rng(cfg.seed, /*stream=*/0x4C);
  const auto clusters = fit_clusters(src, cfg, rng);
  const auto counts = count_cube_labels(src, tiling, clusters,
                                        cfg.cluster_var, cfg.pool);
  const auto pmfs = pmfs_from_counts(std::span<const std::uint32_t>(counts),
                                     clusters.k, tiling.spec().points());
  tally_scan(cfg, src.shape().size());
  return kl_node_strengths(std::span<const double>(pmfs), tiling.count(),
                           clusters.k, cfg.pool);
}

std::vector<double> hypercube_strengths(const field::Snapshot& snap,
                                        const field::CubeTiling& tiling,
                                        const HypercubeSelectorConfig& cfg) {
  return hypercube_strengths(field::SnapshotSource(snap), tiling, cfg);
}

std::vector<std::size_t> select_hypercubes(const field::FieldSource& src,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg) {
  Rng rng(cfg.seed, /*stream=*/0xD1);
  const std::size_t n = tiling.count();
  const std::size_t k = std::min(cfg.num_hypercubes, n);
  if (cfg.method == "random") {
    tally_scan(cfg, 0);
    return rng.sample_without_replacement(n, k);
  }
  SICKLE_CHECK_MSG(cfg.method == "maxent" || cfg.method == "entropy",
                   "unknown hypercube method: " + cfg.method);
  Rng fit_rng(cfg.seed, /*stream=*/0xF17);
  const auto clusters = fit_clusters(src, cfg, fit_rng);
  const auto weights = cube_weights(src, tiling, cfg, clusters);
  tally_scan(cfg, src.shape().size());
  return draw_cubes(std::span<const double>(weights), k, rng);
}

std::vector<std::size_t> select_hypercubes(const field::Snapshot& snap,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg) {
  return select_hypercubes(field::SnapshotSource(snap), tiling, cfg);
}

std::vector<std::size_t> select_hypercubes(const field::Snapshot& snap,
                                           const field::CubeTiling& tiling,
                                           const HypercubeSelectorConfig& cfg,
                                           Comm& comm) {
  Rng rng(cfg.seed, /*stream=*/0xD1);
  const std::size_t n = tiling.count();
  const std::size_t k = std::min(cfg.num_hypercubes, n);
  if (cfg.method == "random") {
    // Deterministic given the seed; every rank computes the same draw.
    return rng.sample_without_replacement(n, k);
  }
  SICKLE_CHECK_MSG(cfg.method == "maxent" || cfg.method == "entropy",
                   "unknown hypercube method: " + cfg.method);

  // Root fits the clustering (as the reference does), then broadcasts the
  // centroids so labels are consistent across ranks.
  const field::SnapshotSource src(snap);
  std::vector<double> centroids;
  if (comm.is_root()) {
    Rng fit_rng(cfg.seed, /*stream=*/0xF17);
    centroids = fit_clusters(src, cfg, fit_rng).centroids;
  }
  comm.broadcast(centroids, 0);
  cluster::KMeansResult clusters;
  clusters.k = centroids.size();
  clusters.dims = 1;
  clusters.centroids = centroids;

  // Each rank counts labels for its block of cubes through the same fused
  // batch kernel as the serial path; PMFs are flattened for allgather.
  const auto [begin, end] = comm.block_range(n);
  const auto local_counts = count_cube_labels(
      src, tiling, clusters, cfg.cluster_var, /*pool=*/nullptr, begin, end);
  const std::vector<double> local_flat = pmfs_from_counts(
      std::span<const std::uint32_t>(local_counts), clusters.k,
      tiling.spec().points());
  if (cfg.energy != nullptr) {
    const double pts = static_cast<double>(end - begin) *
                       static_cast<double>(tiling.spec().points());
    cfg.energy->add_bytes(pts * sizeof(double));
    cfg.energy->add_flops(pts * static_cast<double>(clusters.k));
  }
  const std::vector<double> all_flat = comm.allgather(local_flat);
  SICKLE_CHECK(all_flat.size() == n * clusters.k);

  // The KL reduction is row-decomposed too: each rank reduces its block of
  // rows to node strengths (or entropies) with the identical algebraic
  // O(k)-per-row kernel the serial selector uses (every rank derives the
  // same column log-sums from the allgathered PMFs), so serial and SPMD
  // weights are bit-equal. The strengths are allgathered and every rank
  // performs the identical weighted draw.
  std::vector<double> local_weights;
  local_weights.reserve(end - begin);
  if (cfg.method == "maxent") {
    const auto logs = stats::log_pmf_rows(std::span<const double>(all_flat),
                                          n, clusters.k);
    const auto col_sums =
        stats::log_col_sums(std::span<const double>(logs), n, clusters.k);
    for (std::size_t i = begin; i < end; ++i) {
      local_weights.push_back(stats::kl_row_strength_fast(
          std::span<const double>(all_flat), std::span<const double>(logs),
          std::span<const double>(col_sums), n, clusters.k, i));
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      local_weights.push_back(stats::shannon_entropy(
          std::span<const double>(all_flat)
              .subspan(i * clusters.k, clusters.k)));
    }
  }
  const std::vector<double> weights = comm.allgather(local_weights);
  SICKLE_CHECK(weights.size() == n);
  // Same RNG state on all ranks -> identical selection everywhere.
  return draw_cubes(std::span<const double>(weights), k, rng);
}

}  // namespace sickle::sampling
