/// @file sample_set.hpp
/// @brief Sampled-point containers shared by the sampling pipeline and
/// trainers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sickle::sampling {

/// A set of selected points with their feature vectors.
///
/// `indices` are global flat grid indices into the source snapshot;
/// `features` is row-major [points][variables.size()].
struct SampleSet {
  std::vector<std::string> variables;
  std::vector<std::size_t> indices;
  std::vector<double> features;

  [[nodiscard]] std::size_t points() const noexcept { return indices.size(); }
  [[nodiscard]] std::size_t dims() const noexcept { return variables.size(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    SICKLE_CHECK(i < points());
    return std::span<const double>(features.data() + i * dims(), dims());
  }

  /// Column extraction (all samples of one variable).
  [[nodiscard]] std::vector<double> column(const std::string& var) const {
    std::size_t v = 0;
    for (; v < variables.size(); ++v) {
      if (variables[v] == var) break;
    }
    SICKLE_CHECK_MSG(v < variables.size(), "unknown sample variable: " + var);
    std::vector<double> out;
    out.reserve(points());
    for (std::size_t i = 0; i < points(); ++i) {
      out.push_back(features[i * dims() + v]);
    }
    return out;
  }

  /// Append another sample set with identical variables.
  void append(const SampleSet& other) {
    if (variables.empty() && indices.empty()) {
      variables = other.variables;
    }
    SICKLE_CHECK_MSG(variables == other.variables,
                     "appending sample sets with different variables");
    indices.insert(indices.end(), other.indices.begin(), other.indices.end());
    features.insert(features.end(), other.features.begin(),
                    other.features.end());
  }
};

}  // namespace sickle::sampling
