/// @file point_samplers.hpp
/// @brief Phase-2 point samplers (the paper's X* methods) and their
/// registry.
///
/// Each sampler selects a subset of points inside one hypercube. The
/// framework is pluggable (contribution C1): samplers register by name in a
/// process-wide registry, and the pipeline instantiates them from config
/// strings ("random", "uips", "maxent", ...).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "energy/energy.hpp"
#include "field/hypercube.hpp"

namespace sickle::sampling {

/// Shared knobs for point selection.
struct SamplerContext {
  /// Variables forming the phase space (the paper's input_vars); must be a
  /// subset of the cube's variables.
  std::vector<std::string> phase_variables;
  /// Variable MaxEnt clusters on (the paper's cluster_var / KCV column).
  std::string cluster_var;
  std::size_t num_samples = 1024;   ///< points to keep per cube
  std::size_t num_clusters = 20;    ///< MaxEnt k
  std::size_t pdf_bins = 10;        ///< UIPS bins per phase-space axis
  std::size_t histogram_bins = 100; ///< bins for per-cluster PMFs
  bool minibatch = true;            ///< MiniBatchKMeans vs exact Lloyd
  energy::EnergyCounter* energy = nullptr;  ///< optional work tally
};

/// Interface: select local point indices (0..cube.points()-1).
class PointSampler {
 public:
  virtual ~PointSampler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<std::size_t> select(
      const field::Hypercube& cube, const SamplerContext& ctx,
      Rng& rng) const = 0;
};

/// Uniform random sampling without replacement (the paper's baseline).
class RandomSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// Keep every point ("full" — the densest feasible baseline).
class FullSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "full"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// Stratified sampling: equal-width bins of cluster_var as strata,
/// proportional allocation. This is also the MaxEnt ablation with entropy
/// weighting disabled.
class StratifiedSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "stratified"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// Latin hypercube sampling over the cube's spatial lattice: each of the k
/// strata along every axis contains exactly one selected slab coordinate.
class LatinHypercubeSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "lhs"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// Uniform-in-phase-space (UIPS, Hassanaly et al. 2023): estimate the
/// phase-space density with a binned PDF and draw points with probability
/// proportional to 1/density, flattening the sampled distribution.
class UipsSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "uips"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// MaxEnt point selection (the paper's Xmaxent): cluster on cluster_var,
/// build per-cluster PMFs, KL adjacency (Eq. 2), node strengths, then
/// allocate samples across clusters proportionally to strength.
class MaxEntSampler final : public PointSampler {
 public:
  [[nodiscard]] std::string name() const override { return "maxent"; }
  [[nodiscard]] std::vector<std::size_t> select(const field::Hypercube& cube,
                                                const SamplerContext& ctx,
                                                Rng& rng) const override;
};

/// Registry (pluggable architecture). Built-ins are pre-registered; user
/// samplers can be added at runtime.
class SamplerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PointSampler>()>;

  static SamplerRegistry& instance();

  void register_sampler(const std::string& name, Factory factory);
  [[nodiscard]] std::unique_ptr<PointSampler> create(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  SamplerRegistry();
  std::map<std::string, Factory> factories_;
};

/// Weighted sampling without replacement (Efraimidis–Spirakis exponential
/// keys): returns k indices drawn from weights > 0 without replacement.
/// Shared by UIPS and the hypercube selector; exposed for tests.
[[nodiscard]] std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, Rng& rng);

}  // namespace sickle::sampling
