#include "sampling/pipeline.hpp"

#include <algorithm>
#include <iterator>

#include "common/timer.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/hypercube_selector.hpp"
#include "sampling/point_samplers.hpp"

namespace sickle::sampling {

std::vector<std::string> pipeline_variables(const PipelineConfig& cfg) {
  std::vector<std::string> vars;
  auto push_unique = [&vars](const std::string& v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  for (const auto& v : cfg.input_vars) push_unique(v);
  for (const auto& v : cfg.output_vars) push_unique(v);
  if (!cfg.cluster_var.empty()) push_unique(cfg.cluster_var);
  SICKLE_CHECK_MSG(!vars.empty(), "pipeline needs at least one variable");
  return vars;
}

SampleSet PipelineResult::merged() const {
  SampleSet out;
  for (const auto& c : cubes) out.append(c.samples);
  return out;
}

std::size_t PipelineResult::total_points() const {
  std::size_t n = 0;
  for (const auto& c : cubes) n += c.samples.points();
  return n;
}

namespace {

SamplerContext make_context(const PipelineConfig& cfg,
                            energy::EnergyCounter* energy) {
  SamplerContext ctx;
  ctx.phase_variables = cfg.input_vars;
  ctx.cluster_var = cfg.cluster_var;
  ctx.num_samples = cfg.num_samples;
  ctx.num_clusters = cfg.num_clusters;
  ctx.pdf_bins = cfg.pdf_bins;
  ctx.energy = energy;
  return ctx;
}

HypercubeSelectorConfig make_selector_config(const PipelineConfig& cfg,
                                             energy::EnergyCounter* energy) {
  HypercubeSelectorConfig sel;
  sel.method = cfg.hypercube_method;
  sel.num_hypercubes = cfg.num_hypercubes;
  sel.cluster_var = cfg.cluster_var;
  sel.num_clusters = cfg.num_clusters;
  sel.seed = cfg.seed;
  sel.energy = energy;
  return sel;
}

/// Extract + subsample one cube. The per-cube RNG is forked from the seed
/// and the (snapshot, cube) pair so results do not depend on processing
/// order or rank decomposition.
CubeSamples sample_one_cube(const field::FieldSource& src,
                            const field::CubeTiling& tiling,
                            std::size_t snapshot_index, std::size_t cube_id,
                            const PipelineConfig& cfg,
                            const PointSampler& sampler,
                            const SamplerContext& ctx) {
  const auto vars = pipeline_variables(cfg);
  const field::Hypercube cube = field::extract_cube(
      src, tiling, tiling.coord(cube_id),
      std::span<const std::string>(vars));

  Rng rng = Rng(cfg.seed).fork(snapshot_index * 1000003 + cube_id);
  const std::vector<std::size_t> local = sampler.select(cube, ctx, rng);

  CubeSamples out;
  out.snapshot = snapshot_index;
  out.cube_id = cube_id;
  out.samples.variables = vars;
  out.samples.indices.reserve(local.size());
  out.samples.features.reserve(local.size() * vars.size());
  for (const std::size_t p : local) {
    out.samples.indices.push_back(cube.indices[p]);
    for (std::size_t v = 0; v < vars.size(); ++v) {
      out.samples.features.push_back(cube.values[v][p]);
    }
  }
  return out;
}

/// One snapshot's worth of the pipeline over an abstract source — the
/// single implementation behind the in-memory, dataset, and streaming
/// entry points (the equivalence guarantee of run_pipeline_streaming).
PipelineResult run_over_source(const field::FieldSource& src,
                               const PipelineConfig& cfg,
                               std::size_t snapshot_index,
                               ThreadPool* pool_ptr) {
  PipelineResult result;
  Timer timer;
  const field::CubeTiling tiling(src.shape(), cfg.cube);
  auto sel_cfg = make_selector_config(cfg, &result.energy);
  sel_cfg.seed = cfg.seed + snapshot_index;  // fresh cube draw per snapshot
  sel_cfg.pool = pool_ptr;
  const auto cube_ids = select_hypercubes(src, tiling, sel_cfg);
  const auto sampler = SamplerRegistry::instance().create(cfg.point_method);
  const SamplerContext ctx = make_context(cfg, /*energy=*/nullptr);

  // Phase 2 fans out per cube: every cube forks its own RNG from the
  // (snapshot, cube) pair and writes its samples and energy tallies into
  // its own slot, merged in cube-id order afterwards — so the result
  // (samples *and* energy) is bit-identical for any thread count.
  result.cubes.resize(cube_ids.size());
  std::vector<energy::EnergyCounter> cube_energy(cube_ids.size());
  const auto work = [&](std::size_t i) {
    SamplerContext cube_ctx = ctx;
    cube_ctx.energy = &cube_energy[i];
    result.cubes[i] = sample_one_cube(src, tiling, snapshot_index,
                                      cube_ids[i], cfg, *sampler, cube_ctx);
  };
  if (pool_ptr != nullptr) {
    parallel_for(cube_ids.size(), work, pool_ptr, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < cube_ids.size(); ++i) work(i);
  }
  for (const auto& e : cube_energy) result.energy.merge(e);
  result.sampling_seconds = timer.seconds();
  result.energy.add_seconds(result.sampling_seconds);
  return result;
}

/// Single-snapshot convenience: resolves the pool from cfg.threads for
/// this run. Multi-snapshot callers resolve once and pass the pool down,
/// so a dedicated `threads: N` pool is spawned once per run, not per
/// snapshot.
PipelineResult run_over_source(const field::FieldSource& src,
                               const PipelineConfig& cfg,
                               std::size_t snapshot_index) {
  const PoolHandle pool = resolve_threads(cfg.threads);
  return run_over_source(src, cfg, snapshot_index, pool.get());
}

}  // namespace

PipelineResult run_pipeline(const field::Snapshot& snap,
                            const PipelineConfig& cfg) {
  return run_over_source(field::SnapshotSource(snap), cfg, 0);
}

PipelineResult run_pipeline_streaming(const field::FieldSource& src,
                                      const PipelineConfig& cfg,
                                      std::size_t snapshot_index) {
  return run_over_source(src, cfg, snapshot_index);
}

PipelineResult run_pipeline_streaming(const field::FieldSource& src,
                                      const PipelineConfig& cfg,
                                      std::size_t snapshot_index,
                                      ThreadPool* pool) {
  return run_over_source(src, cfg, snapshot_index, pool);
}

PipelineResult run_pipeline_streaming(const field::SeriesSource& series,
                                      const PipelineConfig& cfg,
                                      std::span<const std::size_t> snapshots) {
  PipelineResult result;
  Timer timer;
  const PoolHandle pool = resolve_threads(cfg.threads);
  for (const std::size_t t : snapshots) {
    SICKLE_CHECK(t < series.num_snapshots());
    auto r = run_over_source(series.source(t), cfg, t, pool.get());
    result.energy.merge(r.energy);
    std::move(r.cubes.begin(), r.cubes.end(),
              std::back_inserter(result.cubes));
  }
  result.sampling_seconds = timer.seconds();
  return result;
}

PipelineResult run_pipeline(const field::Dataset& dataset,
                            const PipelineConfig& cfg) {
  std::vector<std::size_t> all(dataset.num_snapshots());
  for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
  return run_pipeline_streaming(field::DatasetSeriesSource(dataset), cfg,
                                std::span<const std::size_t>(all));
}

PipelineResult run_pipeline(const field::Snapshot& snap,
                            const PipelineConfig& cfg, Comm& comm) {
  PipelineResult result;
  Timer timer;
  const field::SnapshotSource src(snap);
  const field::CubeTiling tiling(snap.shape(), cfg.cube);
  const auto cube_ids = select_hypercubes(
      snap, tiling, make_selector_config(cfg, &result.energy), comm);
  const auto sampler = SamplerRegistry::instance().create(cfg.point_method);
  const SamplerContext ctx = make_context(cfg, &result.energy);

  // Block-decompose the selected cubes over ranks.
  const auto [begin, end] = comm.block_range(cube_ids.size());
  std::vector<CubeSamples> local;
  local.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    local.push_back(
        sample_one_cube(src, tiling, 0, cube_ids[i], cfg, *sampler, ctx));
  }

  // Exchange: flatten local samples (cube_id, n, indices, features) and
  // allgather so every rank holds the full result.
  std::vector<std::size_t> meta;   // [cube_id, npoints] pairs
  std::vector<std::size_t> idx_flat;
  std::vector<double> feat_flat;
  for (const auto& c : local) {
    meta.push_back(c.cube_id);
    meta.push_back(c.samples.points());
    idx_flat.insert(idx_flat.end(), c.samples.indices.begin(),
                    c.samples.indices.end());
    feat_flat.insert(feat_flat.end(), c.samples.features.begin(),
                     c.samples.features.end());
  }
  const auto all_meta = comm.allgather(meta);
  const auto all_idx = comm.allgather(idx_flat);
  const auto all_feat = comm.allgather(feat_flat);

  const auto vars = pipeline_variables(cfg);
  const std::size_t dims = vars.size();
  std::size_t idx_pos = 0, feat_pos = 0;
  for (std::size_t m = 0; m + 1 < all_meta.size(); m += 2) {
    CubeSamples c;
    c.snapshot = 0;
    c.cube_id = all_meta[m];
    const std::size_t npts = all_meta[m + 1];
    c.samples.variables = vars;
    c.samples.indices.assign(all_idx.begin() + idx_pos,
                             all_idx.begin() + idx_pos + npts);
    c.samples.features.assign(all_feat.begin() + feat_pos,
                              all_feat.begin() + feat_pos + npts * dims);
    idx_pos += npts;
    feat_pos += npts * dims;
    result.cubes.push_back(std::move(c));
  }
  // Deterministic ordering regardless of rank interleaving.
  std::sort(result.cubes.begin(), result.cubes.end(),
            [](const CubeSamples& a, const CubeSamples& b) {
              return a.cube_id < b.cube_id;
            });

  result.sampling_seconds = timer.seconds();
  result.energy.add_seconds(result.sampling_seconds);
  return result;
}

}  // namespace sickle::sampling
