#include "sampling/cube_scoring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/entropy.hpp"

namespace sickle::sampling {

std::vector<std::uint32_t> count_cube_labels(
    const field::FieldSource& src, const field::CubeTiling& tiling,
    const cluster::KMeansResult& clusters, const std::string& var,
    ThreadPool* pool, std::size_t cube_begin, std::size_t cube_end) {
  cube_end = std::min(cube_end, tiling.count());
  SICKLE_CHECK_MSG(cube_begin <= cube_end, "invalid cube range");
  SICKLE_CHECK_MSG(clusters.k > 0, "count_cube_labels needs a clustering");
  const std::size_t n = cube_end - cube_begin;
  const std::size_t k = clusters.k;
  const std::size_t ppc = tiling.spec().points();
  std::vector<std::uint32_t> counts(n * k, 0);

  // One worker chunk processes a contiguous cube range with reused
  // gather/label buffers; every cube writes only its own counts slot, so
  // the reduction order (and hence the result) is thread-count invariant.
  const auto worker = [&](std::size_t b, std::size_t e) {
    std::vector<double> values(ppc);
    std::vector<std::uint32_t> labels(ppc);
    for (std::size_t c = b; c < e; ++c) {
      const auto indices =
          tiling.point_indices(tiling.coord(cube_begin + c));
      src.gather(var, std::span<const std::size_t>(indices),
                 std::span<double>(values));
      clusters.assign_batch(std::span<const double>(values),
                            std::span<std::uint32_t>(labels));
      std::uint32_t* row = counts.data() + c * k;
      for (const std::uint32_t l : labels) ++row[l];
    }
  };
  if (pool != nullptr) {
    parallel_for_range(n, worker, pool, /*grain=*/1);
  } else {
    worker(0, n);
  }
  return counts;
}

std::vector<double> pmfs_from_counts(std::span<const std::uint32_t> counts,
                                     std::size_t k,
                                     std::size_t points_per_cube) {
  SICKLE_CHECK_MSG(k > 0 && counts.size() % k == 0,
                   "counts must hold whole k-sized rows");
  SICKLE_CHECK_MSG(points_per_cube > 0, "empty cubes cannot be normalized");
  const double inv = 1.0 / static_cast<double>(points_per_cube);
  std::vector<double> pmfs(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    pmfs[i] = static_cast<double>(counts[i]) * inv;
  }
  return pmfs;
}

std::vector<double> kl_node_strengths(std::span<const double> pmfs,
                                      std::size_t n, std::size_t k,
                                      ThreadPool* pool, double eps) {
  const auto logs = stats::log_pmf_rows(pmfs, n, k, eps);
  // Algebraic strength reduction: column log-sums once (O(n·k)), then each
  // row is an O(k) multiply-add instead of the O(n·k) blocked scan — the
  // whole reduction is O(n·k), so 100k-cube tilings score instantly.
  const auto col_sums =
      stats::log_col_sums(std::span<const double>(logs), n, k);
  std::vector<double> strengths(n);
  const auto worker = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      strengths[i] = stats::kl_row_strength_fast(
          pmfs, std::span<const double>(logs),
          std::span<const double>(col_sums), n, k, i);
    }
  };
  if (pool != nullptr) {
    parallel_for_range(n, worker, pool, /*grain=*/8);
  } else {
    worker(0, n);
  }
  return strengths;
}

std::vector<double> pmf_row_entropies(std::span<const double> pmfs,
                                      std::size_t n, std::size_t k) {
  SICKLE_CHECK_MSG(pmfs.size() == n * k, "pmfs must be n x k row-major");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = stats::shannon_entropy(pmfs.subspan(i * k, k));
  }
  return out;
}

}  // namespace sickle::sampling
