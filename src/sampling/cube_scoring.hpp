/// @file cube_scoring.hpp
/// @brief Fused, batched, thread-parallel cube-scoring engine.
///
/// Phase-1 selection weights every cube of a tiling by how much its
/// cluster-label distribution diverges from the other cubes'. The legacy
/// path classified one grid point per KMeansResult::assign call (a
/// single-element span each), accumulated floating-point PMFs, and built a
/// dense serial O(n^2 k) KL adjacency with a log in the inner loop. The
/// engine here fuses the hot path:
///
///   gather cube values -> assign_batch -> integer label counts
///
/// with no intermediate per-point spans and no PMF until one final
/// normalization, and computes KL node strengths in blocked form from
/// precomputed log rows (stats::kl_row_strength). Both stages fan out over
/// a ThreadPool with cube-id-ordered reduction into preallocated slots, so
/// serial and parallel runs are bit-exact for any thread count. Sources
/// must tolerate concurrent gather() when a pool is supplied (Snapshot
/// sources are read-only; store::ChunkReader shards its cache).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "cluster/kmeans.hpp"
#include "field/field_source.hpp"
#include "field/hypercube.hpp"
#include "parallel/thread_pool.hpp"

namespace sickle::sampling {

/// Per-cube label histograms for cubes [cube_begin, cube_end) of the
/// tiling: counts[(c - cube_begin) * clusters.k + label]. `pool == nullptr`
/// runs serial; any pool produces identical counts (integer accumulation
/// into disjoint per-cube slots). Gather/label buffers are reused across
/// the cubes of one worker chunk, so the engine allocates O(threads *
/// points_per_cube), never O(grid).
[[nodiscard]] std::vector<std::uint32_t> count_cube_labels(
    const field::FieldSource& src, const field::CubeTiling& tiling,
    const cluster::KMeansResult& clusters, const std::string& var,
    ThreadPool* pool = nullptr, std::size_t cube_begin = 0,
    std::size_t cube_end = std::numeric_limits<std::size_t>::max());

/// Normalize integer label counts into a flat row-major [n x k] PMF
/// matrix. Bit-identical to accumulating 1.0 per point and scaling, as the
/// legacy per-point path did.
[[nodiscard]] std::vector<double> pmfs_from_counts(
    std::span<const std::uint32_t> counts, std::size_t k,
    std::size_t points_per_cube);

/// KL node strengths (Eq. 2) over flat [n x k] PMFs: strength[i] =
/// sum_j KL(p_i || p_j), computed in O(n·k) total via the algebraic
/// column-log-sum identity (stats::kl_row_strength_fast) and parallelized
/// by row. Each row is computed wholly by one task, so the result is
/// independent of the thread count.
[[nodiscard]] std::vector<double> kl_node_strengths(
    std::span<const double> pmfs, std::size_t n, std::size_t k,
    ThreadPool* pool = nullptr, double eps = 1e-12);

/// Per-row Shannon entropies of flat [n x k] PMFs — the "entropy"
/// weighting ablation.
[[nodiscard]] std::vector<double> pmf_row_entropies(
    std::span<const double> pmfs, std::size_t n, std::size_t k);

}  // namespace sickle::sampling
