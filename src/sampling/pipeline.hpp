/// @file pipeline.hpp
/// @brief Two-phase sampling pipeline (the paper's subsample.py equivalent).
///
/// Combines phase-1 hypercube selection (H*) with phase-2 point sampling
/// (X*) over one snapshot or a whole dataset, with optional SPMD
/// parallelism over cubes and energy accounting. The five Slurm cases of
/// Figs. 7–8 map to PipelineConfig as:
///   Hmaxent-Xmaxent  {hypercube_method=maxent, point_method=maxent}
///   Hmaxent-Xuips    {maxent, uips}
///   Hrandom-Xfull    {random, full}
///   Hrandom-Xmaxent  {random, maxent}
///   Hrandom-Xuips    {random, uips}
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "energy/energy.hpp"
#include "field/field.hpp"
#include "field/field_source.hpp"
#include "field/hypercube.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/world.hpp"
#include "sampling/sample_set.hpp"

namespace sickle::sampling {

struct PipelineConfig {
  field::CubeSpec cube;                 ///< --nxsl/--nysl/--nzsl
  std::string hypercube_method = "maxent";  ///< --hypercubes
  std::string point_method = "maxent";      ///< --method
  std::size_t num_hypercubes = 32;          ///< --num_hypercubes
  std::size_t num_samples = 3277;           ///< --num_samples (per cube)
  std::size_t num_clusters = 20;            ///< --num_clusters
  std::vector<std::string> input_vars;      ///< --input_vars
  std::vector<std::string> output_vars;     ///< --output_vars
  std::string cluster_var;                  ///< --cluster_var
  std::size_t pdf_bins = 10;                ///< UIPS bins per axis
  std::uint64_t seed = 42;
  /// Worker threads for cube scoring and per-cube point sampling:
  /// 1 = serial (default), 0 = all hardware threads, N = a dedicated
  /// N-worker pool. Sample sets are bit-identical for every value — the
  /// clustering fit and cube draw consume RNG before the fan-out, each
  /// cube forks its own RNG, and all reductions run in cube-id order.
  /// With threads != 1 the snapshot source is gathered concurrently, so a
  /// store-backed run shares one thread-safe sharded ChunkReader.
  std::size_t threads = 1;
};

/// Samples extracted from one cube of one snapshot.
struct CubeSamples {
  std::size_t snapshot = 0;
  std::size_t cube_id = 0;
  SampleSet samples;  ///< variables = input_vars + output_vars + cluster_var
};

struct PipelineResult {
  std::vector<CubeSamples> cubes;
  double sampling_seconds = 0.0;
  energy::EnergyCounter energy;

  /// All samples of one snapshot concatenated.
  [[nodiscard]] SampleSet merged() const;
  [[nodiscard]] std::size_t total_points() const;
};

/// Pipeline over one snapshot; cube scoring and point sampling honor
/// cfg.threads (1 = serial default) with thread-count-independent results.
[[nodiscard]] PipelineResult run_pipeline(const field::Snapshot& snap,
                                          const PipelineConfig& cfg);

/// Out-of-core pipeline over any FieldSource — in particular a
/// store::ChunkReader, whose LRU block cache bounds memory so snapshots
/// larger than RAM can be sampled chunk-by-chunk. Produces exactly the
/// sample set run_pipeline would on the equivalent in-memory snapshot
/// (bit-exact for lossless store codecs; within tolerance for quantized
/// ones). `snapshot_index` reproduces the t-th snapshot's contribution of
/// the Dataset overload (selector seed offset + per-cube RNG fork).
[[nodiscard]] PipelineResult run_pipeline_streaming(
    const field::FieldSource& src, const PipelineConfig& cfg,
    std::size_t snapshot_index = 0);

/// Pool-reusing variant for multi-snapshot drivers: `pool` overrides
/// cfg.threads (nullptr = serial), so a dedicated worker pool can be
/// resolved once per run instead of once per snapshot. Results are
/// identical to the 3-argument overload for any pool.
[[nodiscard]] PipelineResult run_pipeline_streaming(
    const field::FieldSource& src, const PipelineConfig& cfg,
    std::size_t snapshot_index, ThreadPool* pool);

/// Pipeline over the `snapshots` subset of any time-ordered series — the
/// entry point the staged case orchestrator and temporal selection feed.
/// Each listed snapshot keeps its original index t for seed offsets and
/// RNG forks, so sampling a subset returns exactly those snapshots'
/// contributions of a full run. One pool is resolved from cfg.threads for
/// the whole call. With a store::SeriesReader as the series this is the
/// fully out-of-core multi-snapshot path (memory bounded by the reader's
/// shared block cache).
[[nodiscard]] PipelineResult run_pipeline_streaming(
    const field::SeriesSource& series, const PipelineConfig& cfg,
    std::span<const std::size_t> snapshots);

/// Pipeline over every snapshot of a dataset. Snapshots are processed in
/// order; within each snapshot, cube scoring and point sampling honor
/// cfg.threads (one pool resolved for the whole run). Results are
/// independent of the thread count. Delegates to the SeriesSource
/// overload, so in-memory and streamed runs share one implementation.
[[nodiscard]] PipelineResult run_pipeline(const field::Dataset& dataset,
                                          const PipelineConfig& cfg);

/// SPMD pipeline: collective over `comm`; cube work is block-decomposed
/// over ranks and results are allgathered, so every rank returns the full
/// result. The selection is identical for every rank count (deterministic
/// counter RNG keyed by cube id).
[[nodiscard]] PipelineResult run_pipeline(const field::Snapshot& snap,
                                          const PipelineConfig& cfg,
                                          Comm& comm);

/// Variables a cube extraction must carry for this config (input + output +
/// cluster var, deduplicated, order-stable).
[[nodiscard]] std::vector<std::string> pipeline_variables(
    const PipelineConfig& cfg);

}  // namespace sickle::sampling
