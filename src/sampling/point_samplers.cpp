#include "sampling/point_samplers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/kmeans.hpp"
#include "common/mathx.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::sampling {

namespace {

/// Column of the cube corresponding to a named variable.
const std::vector<double>& cube_column(const field::Hypercube& cube,
                                       const std::string& var) {
  for (std::size_t i = 0; i < cube.variables.size(); ++i) {
    if (cube.variables[i] == var) return cube.values[i];
  }
  throw RuntimeError("cube does not carry variable: " + var);
}

void tally_read(const SamplerContext& ctx, const field::Hypercube& cube,
                std::size_t vars_touched) {
  if (ctx.energy == nullptr) return;
  ctx.energy->add_bytes(static_cast<double>(cube.points()) *
                        static_cast<double>(vars_touched) * sizeof(double));
}

std::size_t clamp_samples(const field::Hypercube& cube,
                          const SamplerContext& ctx) {
  return std::min<std::size_t>(ctx.num_samples, cube.points());
}

}  // namespace

std::vector<std::size_t> weighted_sample_without_replacement(
    std::span<const double> weights, std::size_t k, Rng& rng) {
  SICKLE_CHECK_MSG(k <= weights.size(),
                   "cannot draw more samples than candidates");
  // Efraimidis–Spirakis: key_i = -log(u_i)/w_i (exponential with rate w_i);
  // the k smallest keys form a weighted sample without replacement.
  std::vector<std::pair<double, std::size_t>> keys;
  keys.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    SICKLE_CHECK_MSG(w >= 0.0, "negative weight");
    if (w <= 0.0) continue;  // zero-weight items are never selected
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    keys.emplace_back(-std::log(u) / w, i);
  }
  SICKLE_CHECK_MSG(keys.size() >= k,
                   "not enough positive-weight candidates for k draws");
  std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k),
                    keys.end());
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(keys[i].second);
  return out;
}

std::vector<std::size_t> RandomSampler::select(const field::Hypercube& cube,
                                               const SamplerContext& ctx,
                                               Rng& rng) const {
  tally_read(ctx, cube, 1);
  return rng.sample_without_replacement(cube.points(),
                                        clamp_samples(cube, ctx));
}

std::vector<std::size_t> FullSampler::select(const field::Hypercube& cube,
                                             const SamplerContext& ctx,
                                             Rng& /*rng*/) const {
  tally_read(ctx, cube, cube.variables.size());
  std::vector<std::size_t> out(cube.points());
  std::iota(out.begin(), out.end(), 0);
  return out;
}

std::vector<std::size_t> StratifiedSampler::select(
    const field::Hypercube& cube, const SamplerContext& ctx, Rng& rng) const {
  const auto& cv = cube_column(cube, ctx.cluster_var);
  tally_read(ctx, cube, 2);
  const std::size_t k = clamp_samples(cube, ctx);
  const std::size_t strata = std::max<std::size_t>(1, ctx.num_clusters);

  // Equal-width strata over the cluster variable.
  stats::Histogram hist = stats::Histogram::fit(cv, strata);
  std::vector<std::vector<std::size_t>> members(strata);
  for (std::size_t i = 0; i < cv.size(); ++i) {
    members[hist.bin_of(cv[i])].push_back(i);
  }

  // Proportional allocation with largest-remainder rounding.
  std::vector<std::size_t> alloc(strata, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < strata; ++s) {
    const double exact = static_cast<double>(k) *
                         static_cast<double>(members[s].size()) /
                         static_cast<double>(cv.size());
    alloc[s] = static_cast<std::size_t>(std::floor(exact));
    alloc[s] = std::min(alloc[s], members[s].size());
    assigned += alloc[s];
    remainders.emplace_back(exact - std::floor(exact), s);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (const auto& [frac, s] : remainders) {
    if (assigned >= k) break;
    if (alloc[s] < members[s].size()) {
      ++alloc[s];
      ++assigned;
    }
  }
  // If rounding still left a deficit (tiny strata), spill round-robin.
  for (std::size_t s = 0; assigned < k && s < strata; ++s) {
    while (assigned < k && alloc[s] < members[s].size()) {
      ++alloc[s];
      ++assigned;
    }
  }

  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t s = 0; s < strata; ++s) {
    if (alloc[s] == 0) continue;
    const auto pick =
        rng.sample_without_replacement(members[s].size(), alloc[s]);
    for (const std::size_t j : pick) out.push_back(members[s][j]);
  }
  return out;
}

std::vector<std::size_t> LatinHypercubeSampler::select(
    const field::Hypercube& cube, const SamplerContext& ctx, Rng& rng) const {
  tally_read(ctx, cube, 1);
  const std::size_t n = cube.points();
  const std::size_t k = clamp_samples(cube, ctx);
  // The cube's points are ordered z-fastest over an (ex, ey, ez) lattice.
  // LHS on a lattice: permute k strata per axis and take the diagonal of
  // the permutations, mapping stratum s to a random cell inside it.
  // Recover edges from the cube size assuming the tiling's ordering.
  // For robustness against degenerate (flattened) cubes, operate on the
  // flat index: divide [0, n) into k strata and pick one point per stratum,
  // then shuffle. This retains LHS's one-sample-per-stratum marginal
  // property along the dominant axis ordering.
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    // Strata [s*n/k, (s+1)*n/k) are disjoint, so selections are distinct.
    const std::size_t b = s * n / k;
    const std::size_t e = std::max(b + 1, (s + 1) * n / k);
    out.push_back(b + rng.uniform_int(e - b));
  }
  return out;
}

std::vector<std::size_t> UipsSampler::select(const field::Hypercube& cube,
                                             const SamplerContext& ctx,
                                             Rng& rng) const {
  SICKLE_CHECK_MSG(!ctx.phase_variables.empty(),
                   "UIPS needs phase_variables");
  tally_read(ctx, cube, ctx.phase_variables.size());
  const std::size_t n = cube.points();
  const std::size_t k = clamp_samples(cube, ctx);
  const std::size_t d = ctx.phase_variables.size();

  // Assemble phase-space points.
  std::vector<const std::vector<double>*> cols;
  cols.reserve(d);
  for (const auto& var : ctx.phase_variables) {
    cols.push_back(&cube_column(cube, var));
  }
  std::vector<std::vector<double>> pts(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) pts[i][j] = (*cols[j])[i];
  }

  // Binned density estimate, then weights 1/p-hat.
  stats::HistogramND hist = stats::HistogramND::fit(
      std::span<const std::vector<double>>(pts), ctx.pdf_bins);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double density = hist.density_at(pts[i]);
    weights[i] = 1.0 / std::max(density, 1e-12);
  }
  if (ctx.energy != nullptr) {
    ctx.energy->add_flops(static_cast<double>(n) * static_cast<double>(d) *
                          4.0);
  }
  return weighted_sample_without_replacement(
      std::span<const double>(weights), k, rng);
}

std::vector<std::size_t> MaxEntSampler::select(const field::Hypercube& cube,
                                               const SamplerContext& ctx,
                                               Rng& rng) const {
  SICKLE_CHECK_MSG(!ctx.cluster_var.empty(), "MaxEnt needs cluster_var");
  const auto& cv = cube_column(cube, ctx.cluster_var);
  tally_read(ctx, cube, 2);
  const std::size_t n = cube.points();
  const std::size_t k = clamp_samples(cube, ctx);
  const std::size_t num_clusters =
      std::min<std::size_t>(std::max<std::size_t>(2, ctx.num_clusters), n);

  // 1. Cluster the target variable (1D).
  cluster::KMeansOptions opts;
  opts.k = num_clusters;
  opts.max_iterations = 50;
  cluster::KMeansResult clusters =
      ctx.minibatch
          ? cluster::minibatch_kmeans(std::span<const double>(cv), n, 1,
                                      opts, rng)
          : cluster::kmeans(std::span<const double>(cv), n, 1, opts, rng);
  if (ctx.energy != nullptr) {
    ctx.energy->add_flops(static_cast<double>(n) *
                          static_cast<double>(num_clusters) *
                          static_cast<double>(clusters.iterations) * 3.0);
  }

  // 2. Per-cluster PMFs of the target variable over a shared binning.
  stats::Histogram global = stats::Histogram::fit(cv, ctx.histogram_bins);
  std::vector<stats::Histogram> per_cluster(
      num_clusters,
      stats::Histogram(global.lo(), global.hi(), global.bins()));
  std::vector<std::vector<std::size_t>> members(num_clusters);
  for (std::size_t i = 0; i < n; ++i) {
    per_cluster[clusters.labels[i]].add(cv[i]);
    members[clusters.labels[i]].push_back(i);
  }
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(num_clusters);
  for (const auto& h : per_cluster) pmfs.push_back(h.pmf());

  // 3. KL adjacency (Eq. 2) and node strengths.
  const std::vector<double> adjacency =
      stats::kl_adjacency(std::span<const std::vector<double>>(pmfs));
  const std::vector<double> strengths = stats::node_strengths(
      std::span<const double>(adjacency), num_clusters);
  const std::vector<double> probs =
      stats::normalize_weights(std::span<const double>(strengths));

  // 4. Allocate samples across clusters by strength and draw randomly
  //    within each cluster. Largest-remainder rounding; spill to clusters
  //    with spare capacity if a strong cluster is too small.
  std::vector<std::size_t> alloc(num_clusters, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const double exact = static_cast<double>(k) * probs[c];
    alloc[c] = std::min<std::size_t>(
        static_cast<std::size_t>(std::floor(exact)), members[c].size());
    assigned += alloc[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (const auto& [frac, c] : remainders) {
    if (assigned >= k) break;
    if (alloc[c] < members[c].size()) {
      ++alloc[c];
      ++assigned;
    }
  }
  for (std::size_t c = 0; assigned < k && c < num_clusters; ++c) {
    while (assigned < k && alloc[c] < members[c].size()) {
      ++alloc[c];
      ++assigned;
    }
  }

  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (alloc[c] == 0) continue;
    const auto pick =
        rng.sample_without_replacement(members[c].size(), alloc[c]);
    for (const std::size_t j : pick) out.push_back(members[c][j]);
  }
  return out;
}

SamplerRegistry::SamplerRegistry() {
  register_sampler("random", [] { return std::make_unique<RandomSampler>(); });
  register_sampler("full", [] { return std::make_unique<FullSampler>(); });
  register_sampler("stratified",
                   [] { return std::make_unique<StratifiedSampler>(); });
  register_sampler("lhs",
                   [] { return std::make_unique<LatinHypercubeSampler>(); });
  register_sampler("uips", [] { return std::make_unique<UipsSampler>(); });
  register_sampler("maxent", [] { return std::make_unique<MaxEntSampler>(); });
}

SamplerRegistry& SamplerRegistry::instance() {
  static SamplerRegistry registry;
  return registry;
}

void SamplerRegistry::register_sampler(const std::string& name,
                                       Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<PointSampler> SamplerRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw RuntimeError("unknown sampler: " + name);
  }
  return it->second();
}

std::vector<std::string> SamplerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

}  // namespace sickle::sampling
