#include "infer/engine.hpp"

#include <cstdio>
#include <memory>
#include <type_traits>

#include "ml/layers_basic.hpp"
#include "ml/models.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle::infer {

namespace {

constexpr std::uint32_t kMagic = 0x534B4946;  // "SKIF"
constexpr std::uint32_t kVersion = 1;

[[nodiscard]] std::vector<float> to_vec(const ml::Tensor& t) {
  return {t.raw(), t.raw() + t.size()};
}

[[nodiscard]] Act map_act(ml::Activation a) {
  switch (a) {
    case ml::Activation::kRelu: return Act::kRelu;
    case ml::Activation::kTanh: return Act::kTanh;
    case ml::Activation::kGelu: return Act::kGelu;
    case ml::Activation::kSigmoid: return Act::kSigmoid;
  }
  throw RuntimeError("infer: unknown activation kind");
}

/// Walk a Sequential of Dense/Activation(/Dropout) layers into a packed
/// chain; activations fold onto the preceding dense layer.
[[nodiscard]] std::vector<PackedDense> pack_dense_chain(
    ml::Sequential& seq) {
  std::vector<PackedDense> chain;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ml::Module& m = seq.at(i);
    if (auto* d = dynamic_cast<ml::Dense*>(&m)) {
      if (!chain.empty() && chain.back().out != d->in_features()) {
        throw RuntimeError("infer: dense chain width mismatch");
      }
      PackedDense p;
      p.in = d->in_features();
      p.out = d->out_features();
      p.w = to_vec(d->weight());
      if (d->has_bias()) p.b = to_vec(d->bias());
      chain.push_back(std::move(p));
    } else if (auto* a = dynamic_cast<ml::ActivationLayer*>(&m)) {
      if (chain.empty() || chain.back().act != Act::kIdentity) {
        throw RuntimeError(
            "infer: activation layer without a preceding dense layer");
      }
      chain.back().act = map_act(a->kind());
    } else if (dynamic_cast<ml::Dropout*>(&m) != nullptr) {
      // Inverted dropout is the identity at inference; fold it away.
      continue;
    } else {
      throw RuntimeError("infer: unsupported layer in dense chain: " +
                         m.name());
    }
  }
  if (chain.empty()) {
    throw RuntimeError("infer: empty dense chain");
  }
  return chain;
}

void validate_weights(const LstmWeights& w) {
  if (w.hidden < static_cast<std::size_t>(kMinHidden) ||
      w.hidden > static_cast<std::size_t>(kMaxHidden)) {
    throw RuntimeError(
        "infer: hidden size " + std::to_string(w.hidden) +
        " outside the compiled variant ladder [" +
        std::to_string(kMinHidden) + ", " + std::to_string(kMaxHidden) +
        "]");
  }
  const std::size_t H = w.hidden;
  if (w.in == 0 || w.horizon == 0 || w.out_channels == 0) {
    throw RuntimeError("infer: degenerate surrogate extents");
  }
  if (w.wx1.size() != 4 * H * w.in || w.wh1.size() != 4 * H * H ||
      w.b1.size() != 4 * H || w.wx2.size() != 4 * H * H ||
      w.wh2.size() != 4 * H * H || w.b2.size() != 4 * H) {
    throw RuntimeError("infer: LSTM weight extents do not match config");
  }
  if (w.head.empty() || w.head.front().in != H) {
    throw RuntimeError("infer: head does not consume the hidden state");
  }
  for (std::size_t l = 0; l < w.head.size(); ++l) {
    const PackedDense& d = w.head[l];
    if (d.w.size() != d.in * d.out ||
        (!d.b.empty() && d.b.size() != d.out)) {
      throw RuntimeError("infer: head weight extents inconsistent");
    }
    if (l > 0 && w.head[l - 1].out != d.in) {
      throw RuntimeError("infer: head chain width mismatch");
    }
  }
  if (w.head.back().out != w.horizon * w.out_channels) {
    throw RuntimeError("infer: head output does not match horizon");
  }
}

/// Recursive dispatch down the ladder: emplace the SurrogateT matching a
/// runtime hidden size.
template <int H = kMaxHidden>
void emplace_for_hidden(std::size_t hidden, ModelVariant& v) {
  if (hidden == static_cast<std::size_t>(H)) {
    v.template emplace<SurrogateT<H>>();
    return;
  }
  if constexpr (H > kMinHidden) {
    emplace_for_hidden<H - 1>(hidden, v);
  } else {
    throw RuntimeError("infer: hidden size not on the variant ladder");
  }
}

// --- binary checkpoint helpers -------------------------------------------

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    throw RuntimeError("infer: engine checkpoint write failed");
  }
}
void read_bytes(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) {
    throw RuntimeError("infer: engine checkpoint truncated");
  }
}
void write_u32(std::FILE* f, std::uint32_t v) { write_bytes(f, &v, 4); }
void write_u64(std::FILE* f, std::uint64_t v) { write_bytes(f, &v, 8); }
void write_u8(std::FILE* f, std::uint8_t v) { write_bytes(f, &v, 1); }
[[nodiscard]] std::uint32_t read_u32(std::FILE* f) {
  std::uint32_t v = 0;
  read_bytes(f, &v, 4);
  return v;
}
[[nodiscard]] std::uint64_t read_u64(std::FILE* f) {
  std::uint64_t v = 0;
  read_bytes(f, &v, 8);
  return v;
}
[[nodiscard]] std::uint8_t read_u8(std::FILE* f) {
  std::uint8_t v = 0;
  read_bytes(f, &v, 1);
  return v;
}
void write_floats(std::FILE* f, const std::vector<float>& v) {
  write_u64(f, v.size());
  write_bytes(f, v.data(), v.size() * sizeof(float));
}
[[nodiscard]] std::vector<float> read_floats(std::FILE* f) {
  const std::uint64_t n = read_u64(f);
  // 1 GiB of floats is far beyond any engine this ladder can express —
  // reject early instead of letting a corrupt length drive a huge alloc.
  if (n > (1u << 28)) {
    throw RuntimeError("infer: engine checkpoint corrupt (vector length)");
  }
  std::vector<float> v(static_cast<std::size_t>(n));
  read_bytes(f, v.data(), v.size() * sizeof(float));
  return v;
}
void write_dense(std::FILE* f, const PackedDense& d) {
  write_u64(f, d.in);
  write_u64(f, d.out);
  write_u8(f, static_cast<std::uint8_t>(d.act));
  write_floats(f, d.w);
  write_floats(f, d.b);
}
[[nodiscard]] PackedDense read_dense(std::FILE* f) {
  PackedDense d;
  d.in = static_cast<std::size_t>(read_u64(f));
  d.out = static_cast<std::size_t>(read_u64(f));
  const std::uint8_t act = read_u8(f);
  if (act > static_cast<std::uint8_t>(Act::kSigmoid)) {
    throw RuntimeError("infer: engine checkpoint corrupt (activation)");
  }
  d.act = static_cast<Act>(act);
  d.w = read_floats(f);
  d.b = read_floats(f);
  return d;
}

}  // namespace

Engine Engine::from_weights(LstmWeights w) {
  validate_weights(w);
  Engine e;
  e.arch_ = Arch::kLstmSurrogate;
  e.lw_ = std::move(w);
  emplace_for_hidden(e.lw_.hidden, e.model_);
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (!std::is_same_v<T, std::monostate>) {
          m.pack(e.lw_);
        }
      },
      e.model_);
  return e;
}

Engine Engine::from_mlp(std::vector<PackedDense> layers) {
  if (layers.empty()) {
    throw RuntimeError("infer: empty dense chain");
  }
  std::size_t widest = 1;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const PackedDense& d = layers[l];
    if (d.in == 0 || d.out == 0 || d.w.size() != d.in * d.out ||
        (!d.b.empty() && d.b.size() != d.out)) {
      throw RuntimeError("infer: dense extents inconsistent");
    }
    if (l > 0 && layers[l - 1].out != d.in) {
      throw RuntimeError("infer: dense chain width mismatch");
    }
    widest = std::max(widest, d.out);
  }
  Engine e;
  e.arch_ = Arch::kMlp;
  e.mlp_ = std::move(layers);
  e.scratch0_.assign(widest, 0.0f);
  e.scratch1_.assign(widest, 0.0f);
  return e;
}

std::size_t Engine::input_features() const noexcept {
  if (arch_ == Arch::kLstmSurrogate) return lw_.in;
  if (arch_ == Arch::kMlp) return mlp_.front().in;
  return 0;
}

std::size_t Engine::output_features() const noexcept {
  if (arch_ == Arch::kLstmSurrogate) return lw_.head.back().out;
  if (arch_ == Arch::kMlp) return mlp_.back().out;
  return 0;
}

std::size_t Engine::num_parameters() const noexcept {
  std::size_t n = 0;
  if (arch_ == Arch::kLstmSurrogate) {
    n = lw_.wx1.size() + lw_.wh1.size() + lw_.b1.size() + lw_.wx2.size() +
        lw_.wh2.size() + lw_.b2.size();
    for (const auto& d : lw_.head) n += d.w.size() + d.b.size();
  } else {
    for (const auto& d : mlp_) n += d.w.size() + d.b.size();
  }
  return n;
}

void Engine::predict(std::span<const float> input, std::span<float> out) {
  obs::Span span("infer.forward", "infer");
  if (obs::enabled()) {
    static obs::Counter& forwards =
        obs::MetricsRegistry::global().counter("infer.forward.count");
    forwards.add();
  }
  SICKLE_CHECK_MSG(compiled(), "infer: predict on an empty engine");
  SICKLE_CHECK_MSG(out.size() == output_features(),
                   "infer: output span size mismatch");
  if (arch_ == Arch::kLstmSurrogate) {
    SICKLE_CHECK_MSG(
        input.size() >= lw_.in && input.size() % lw_.in == 0,
        "infer: LSTM input must be a whole number of timesteps");
    const std::size_t steps = input.size() / lw_.in;
    std::visit(
        [&](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (!std::is_same_v<T, std::monostate>) {
            m.forward(input.data(), steps, out.data());
          }
        },
        model_);
  } else {
    SICKLE_CHECK_MSG(input.size() == mlp_.front().in,
                     "infer: MLP input size mismatch");
    const float* cur = input.data();
    for (std::size_t l = 0; l < mlp_.size(); ++l) {
      float* dst = (l + 1 == mlp_.size()) ? out.data()
                   : (l % 2 == 0)         ? scratch0_.data()
                                          : scratch1_.data();
      mlp_[l].forward(cur, dst);
      cur = dst;
    }
  }
}

void Engine::save(const std::string& path) const {
  SICKLE_CHECK_MSG(compiled(), "infer: save on an empty engine");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    throw RuntimeError("infer: cannot open " + path + " for writing");
  }
  write_u32(f.get(), kMagic);
  write_u32(f.get(), kVersion);
  write_u8(f.get(), static_cast<std::uint8_t>(arch_));
  if (arch_ == Arch::kLstmSurrogate) {
    write_u64(f.get(), lw_.in);
    write_u64(f.get(), lw_.hidden);
    write_u64(f.get(), lw_.horizon);
    write_u64(f.get(), lw_.out_channels);
    write_floats(f.get(), lw_.wx1);
    write_floats(f.get(), lw_.wh1);
    write_floats(f.get(), lw_.b1);
    write_floats(f.get(), lw_.wx2);
    write_floats(f.get(), lw_.wh2);
    write_floats(f.get(), lw_.b2);
    write_u64(f.get(), lw_.head.size());
    for (const auto& d : lw_.head) write_dense(f.get(), d);
  } else {
    write_u64(f.get(), mlp_.size());
    for (const auto& d : mlp_) write_dense(f.get(), d);
  }
  if (std::fflush(f.get()) != 0) {
    throw RuntimeError("infer: engine checkpoint write failed");
  }
}

Engine Engine::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    throw RuntimeError("infer: cannot open " + path);
  }
  if (read_u32(f.get()) != kMagic) {
    throw RuntimeError("infer: " + path + " is not an engine checkpoint");
  }
  if (read_u32(f.get()) != kVersion) {
    throw RuntimeError("infer: unsupported engine checkpoint version");
  }
  const std::uint8_t arch = read_u8(f.get());
  if (arch == static_cast<std::uint8_t>(Arch::kLstmSurrogate)) {
    LstmWeights w;
    w.in = static_cast<std::size_t>(read_u64(f.get()));
    w.hidden = static_cast<std::size_t>(read_u64(f.get()));
    w.horizon = static_cast<std::size_t>(read_u64(f.get()));
    w.out_channels = static_cast<std::size_t>(read_u64(f.get()));
    w.wx1 = read_floats(f.get());
    w.wh1 = read_floats(f.get());
    w.b1 = read_floats(f.get());
    w.wx2 = read_floats(f.get());
    w.wh2 = read_floats(f.get());
    w.b2 = read_floats(f.get());
    const std::uint64_t nd = read_u64(f.get());
    if (nd > 64) {
      throw RuntimeError("infer: engine checkpoint corrupt (head depth)");
    }
    for (std::uint64_t i = 0; i < nd; ++i) {
      w.head.push_back(read_dense(f.get()));
    }
    return from_weights(std::move(w));  // re-validates every extent
  }
  if (arch == static_cast<std::uint8_t>(Arch::kMlp)) {
    const std::uint64_t nd = read_u64(f.get());
    if (nd > 64) {
      throw RuntimeError("infer: engine checkpoint corrupt (depth)");
    }
    std::vector<PackedDense> layers;
    for (std::uint64_t i = 0; i < nd; ++i) {
      layers.push_back(read_dense(f.get()));
    }
    return from_mlp(std::move(layers));
  }
  throw RuntimeError("infer: engine checkpoint corrupt (arch)");
}

Engine compile(ml::LstmModel& model) {
  obs::Span span("infer.compile", "infer");
  const ml::LstmModelConfig& cfg = model.config();
  const std::size_t H = cfg.hidden;
  const ml::Lstm& l1 = model.lstm1();
  const ml::Lstm& l2 = model.lstm2();
  // Belt and braces: the config and the live layer extents must agree
  // before the weights are reinterpreted into the packed layout.
  if (l1.input_size() != cfg.in_channels || l1.hidden_size() != H ||
      l2.input_size() != H || l2.hidden_size() != H) {
    throw RuntimeError("infer: LstmModel layers disagree with its config");
  }
  LstmWeights w;
  w.in = cfg.in_channels;
  w.hidden = H;
  w.horizon = cfg.horizon;
  w.out_channels = cfg.out_channels;
  w.wx1 = to_vec(l1.w_x());
  w.wh1 = to_vec(l1.w_h());
  w.b1 = to_vec(l1.bias());
  w.wx2 = to_vec(l2.w_x());
  w.wh2 = to_vec(l2.w_h());
  w.b2 = to_vec(l2.bias());
  w.head = pack_dense_chain(model.head());
  Engine e = Engine::from_weights(std::move(w));
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("infer.compile.count").add();
    obs::MetricsRegistry::global()
        .gauge("infer.engine.hidden")
        .set(static_cast<double>(H));
  }
  return e;
}

Engine compile(ml::Sequential& mlp) {
  obs::Span span("infer.compile", "infer");
  Engine e = Engine::from_mlp(pack_dense_chain(mlp));
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("infer.compile.count").add();
  }
  return e;
}

}  // namespace sickle::infer
