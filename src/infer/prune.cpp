#include "infer/prune.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle::infer {

namespace {

/// Drop hidden channel j's four gate rows from a gate-major [4H x cols]
/// matrix -> [4(H-1) x cols], preserving gate-major order.
[[nodiscard]] std::vector<float> drop_gate_rows(
    const std::vector<float>& m, std::size_t H, std::size_t cols,
    std::size_t j) {
  std::vector<float> out;
  out.reserve(4 * (H - 1) * cols);
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t r = 0; r < H; ++r) {
      if (r == j) continue;
      const float* row = m.data() + (g * H + r) * cols;
      out.insert(out.end(), row, row + cols);
    }
  }
  return out;
}

/// Drop one column from a row-major [rows x cols] matrix.
[[nodiscard]] std::vector<float> drop_col(const std::vector<float>& m,
                                          std::size_t rows,
                                          std::size_t cols, std::size_t c) {
  std::vector<float> out;
  out.reserve(rows * (cols - 1));
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    out.insert(out.end(), row, row + c);
    out.insert(out.end(), row + c + 1, row + cols);
  }
  return out;
}

/// Drop hidden channel j's four gate entries from a [4H] bias.
[[nodiscard]] std::vector<float> drop_gate_entries(
    const std::vector<float>& b, std::size_t H, std::size_t j) {
  std::vector<float> out;
  out.reserve(4 * (H - 1));
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t r = 0; r < H; ++r) {
      if (r != j) out.push_back(b[g * H + r]);
    }
  }
  return out;
}

/// Remove hidden channel c1 of the first LSTM and c2 of the second from
/// the canonical weights: the channels' gate rows, recurrent columns,
/// bias gates, and their fan-out into the consuming layer all go.
[[nodiscard]] LstmWeights remove_channel(const LstmWeights& w,
                                         std::size_t c1, std::size_t c2) {
  const std::size_t H = w.hidden;
  LstmWeights out;
  out.in = w.in;
  out.hidden = H - 1;
  out.horizon = w.horizon;
  out.out_channels = w.out_channels;
  out.wx1 = drop_gate_rows(w.wx1, H, w.in, c1);
  out.wh1 = drop_col(drop_gate_rows(w.wh1, H, H, c1), 4 * (H - 1), H, c1);
  out.b1 = drop_gate_entries(w.b1, H, c1);
  // lstm2 consumes lstm1's hidden: its input columns track c1, its own
  // hidden rows/columns track c2.
  out.wx2 = drop_col(drop_gate_rows(w.wx2, H, H, c2), 4 * (H - 1), H, c1);
  out.wh2 = drop_col(drop_gate_rows(w.wh2, H, H, c2), 4 * (H - 1), H, c2);
  out.b2 = drop_gate_entries(w.b2, H, c2);
  out.head = w.head;
  PackedDense& d1 = out.head.front();
  d1.w = drop_col(d1.w, d1.out, d1.in, c2);
  d1.in -= 1;
  return out;
}

struct MagnitudeAcc {
  double sum = 0.0;
  std::size_t count = 0;
  void add(const float* p, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) sum += std::abs(p[i]);
    count += n;
  }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Mean |w| of hidden channel j across everything it touches: its gate
/// rows in w_x/w_h, the recurrent column reading it, its bias gates, and
/// its fan-out columns into the consuming layer.
[[nodiscard]] double channel_magnitude(const LstmWeights& w, int layer,
                                       std::size_t j) {
  const std::size_t H = w.hidden;
  MagnitudeAcc acc;
  const std::vector<float>& wx = (layer == 1) ? w.wx1 : w.wx2;
  const std::vector<float>& wh = (layer == 1) ? w.wh1 : w.wh2;
  const std::vector<float>& b = (layer == 1) ? w.b1 : w.b2;
  const std::size_t in = (layer == 1) ? w.in : H;
  for (std::size_t g = 0; g < 4; ++g) {
    acc.add(wx.data() + (g * H + j) * in, in);
    acc.add(wh.data() + (g * H + j) * H, H);
    const float bias = b[g * H + j];
    acc.add(&bias, 1);
  }
  for (std::size_t r = 0; r < 4 * H; ++r) {
    const float v = wh[r * H + j];
    acc.add(&v, 1);
  }
  if (layer == 1) {
    for (std::size_t r = 0; r < 4 * H; ++r) {
      const float v = w.wx2[r * H + j];
      acc.add(&v, 1);
    }
  } else {
    const PackedDense& d1 = w.head.front();
    for (std::size_t r = 0; r < d1.out; ++r) {
      const float v = d1.w[r * d1.in + j];
      acc.add(&v, 1);
    }
  }
  return acc.mean();
}

[[nodiscard]] std::size_t argmin_channel(const LstmWeights& w, int layer) {
  std::size_t best = 0;
  double best_mag = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < w.hidden; ++j) {
    const double mag = channel_magnitude(w, layer, j);
    if (mag < best_mag) {
      best_mag = mag;
      best = j;
    }
  }
  return best;
}

/// RMS deviation of `engine` from `ref` over the probe set.
[[nodiscard]] double probe_rms(Engine& engine,
                               std::span<const float> probes,
                               std::size_t num_probes,
                               std::span<const float> ref) {
  const std::size_t probe_len = probes.size() / num_probes;
  const std::size_t out_f = engine.output_features();
  std::vector<float> out(out_f);
  double sq = 0.0;
  for (std::size_t p = 0; p < num_probes; ++p) {
    engine.predict(probes.subspan(p * probe_len, probe_len), out);
    for (std::size_t o = 0; o < out_f; ++o) {
      const double d = static_cast<double>(out[o]) -
                       static_cast<double>(ref[p * out_f + o]);
      sq += d * d;
    }
  }
  return std::sqrt(sq / static_cast<double>(num_probes * out_f));
}

}  // namespace

std::pair<std::size_t, std::size_t> find_pruning_candidate(
    const Engine& engine) {
  SICKLE_CHECK_MSG(engine.arch() == Engine::Arch::kLstmSurrogate,
                   "infer: pruning targets LSTM surrogate engines");
  const LstmWeights& w = engine.lstm_weights();
  return {argmin_channel(w, 1), argmin_channel(w, 2)};
}

PruneReport prune(Engine& engine, std::span<const float> probes,
                  std::size_t num_probes, const PruneOptions& opts) {
  obs::Span span("infer.prune", "infer");
  SICKLE_CHECK_MSG(engine.arch() == Engine::Arch::kLstmSurrogate,
                   "infer: pruning targets LSTM surrogate engines");
  SICKLE_CHECK_MSG(num_probes > 0 && probes.size() % num_probes == 0,
                   "infer: probes must hold num_probes equal windows");
  const std::size_t probe_len = probes.size() / num_probes;
  SICKLE_CHECK_MSG(
      probe_len >= engine.input_features() &&
          probe_len % engine.input_features() == 0,
      "infer: each probe must be whole timesteps of input_features()");

  PruneReport report;
  report.initial_hidden = engine.hidden();
  report.final_hidden = engine.hidden();

  // Reference predictions of the engine as handed in: every candidate is
  // scored against these, so accepted error never compounds past the
  // threshold.
  const std::size_t out_f = engine.output_features();
  std::vector<float> ref(num_probes * out_f);
  for (std::size_t p = 0; p < num_probes; ++p) {
    engine.predict(probes.subspan(p * probe_len, probe_len),
                   std::span<float>(ref).subspan(p * out_f, out_f));
  }

  const std::size_t floor_hidden =
      std::max(opts.min_hidden, static_cast<std::size_t>(kMinHidden));
  while (engine.hidden() > floor_hidden &&
         (opts.max_channels == 0 ||
          report.accepted.size() < opts.max_channels)) {
    const auto [c1, c2] = find_pruning_candidate(engine);
    Engine candidate =
        Engine::from_weights(remove_channel(engine.lstm_weights(), c1, c2));
    const double rms =
        probe_rms(candidate, probes, num_probes,
                  std::span<const float>(ref));
    if (!(rms <= opts.rms_threshold)) {
      report.refused = true;
      break;
    }
    engine = std::move(candidate);
    report.accepted.push_back(PruneStep{c1, c2, rms});
    report.final_rms = rms;
    report.final_hidden = engine.hidden();
  }

  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .gauge("infer.pruned_channels")
        .set(static_cast<double>(report.accepted.size()));
    obs::MetricsRegistry::global()
        .gauge("infer.engine.hidden")
        .set(static_cast<double>(report.final_hidden));
  }
  return report;
}

}  // namespace sickle::infer
