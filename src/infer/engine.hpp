// The microsecond surrogate inference engine (ROADMAP D3).
//
// Training (src/ml/) runs every prediction through the dynamic Tensor
// path — per-layer heap allocation, shape checks, virtual dispatch, and
// activation caching for a backward pass that inference never takes.
// This module compiles a trained checkpoint once into a packed,
// compile-time-specialized form and serves batch-1 forwards from it:
//
//   ml::LstmModel / ml::Sequential
//        --compile()-->  infer::Engine      (validates shapes, packs
//                                            weights, builds the variant)
//        --prune()---->  smaller Engine     (magnitude pruning, prune.hpp)
//        --predict()-->  output             (allocation-free, simd dots)
//
// The LSTM surrogate dispatches through ModelVariant — a std::variant
// over SurrogateT<H> for every hidden size H in [kMinHidden, kMaxHidden],
// built by template recursion (the RTNeural ModelT/Model_Variant_Builder
// idiom): one std::visit at the predict boundary, then a fully-specialized
// forward with statically-known recurrent extents. The one-step ladder
// exists because magnitude pruning removes a single hidden channel at a
// time, so every intermediate size must be dispatchable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "infer/layers.hpp"

namespace sickle::infer {

/// Hidden-size ladder the variant is instantiated over. Checkpoints with
/// hidden sizes outside [kMinHidden, kMaxHidden] are rejected by
/// compile() with a typed error; widen the ladder here if a case needs a
/// bigger surrogate (compile time grows linearly with the span).
inline constexpr int kMinHidden = 2;
inline constexpr int kMaxHidden = 32;

/// Canonical runtime-extent form of a compiled LSTM drag surrogate:
/// two stacked LSTM layers sharing one hidden size plus a dense head.
/// This is the form pruning does index surgery on and save()/load()
/// serialize; the packed variant is always re-derived from it.
/// Layouts match ml::Lstm: gate-major [4H, *] row-major, gate order
/// i|f|g|o.
struct LstmWeights {
  std::size_t in = 0;      ///< input channels per timestep
  std::size_t hidden = 0;  ///< H of both LSTM layers
  std::size_t horizon = 1;
  std::size_t out_channels = 1;
  std::vector<float> wx1, wh1, b1;  ///< [4H*in], [4H*H], [4H]
  std::vector<float> wx2, wh2, b2;  ///< [4H*H], [4H*H], [4H]
  std::vector<PackedDense> head;    ///< dense stack fed the last hidden
};

/// Fully-specialized surrogate for one compile-time hidden size.
template <int H>
struct SurrogateT {
  static constexpr int kHidden = H;
  LstmLayerT<H> lstm1;
  LstmLayerT<H> lstm2;
  std::vector<PackedDense> head;
  std::vector<float> scratch0, scratch1;

  void pack(const LstmWeights& w) {
    lstm1.pack(w.in, w.wx1.data(), w.wh1.data(), w.b1.data());
    lstm2.pack(static_cast<std::size_t>(H), w.wx2.data(), w.wh2.data(),
               w.b2.data());
    head = w.head;
    std::size_t widest = 1;
    for (const auto& d : head) widest = std::max(widest, d.out);
    scratch0.assign(widest, 0.0f);
    scratch1.assign(widest, 0.0f);
  }

  void forward(const float* x, std::size_t steps, float* out) {
    lstm1.reset();
    lstm2.reset();
    // The first (wide-input) layer sees the whole window up front, so its
    // input-weight matrix is streamed once for all timesteps; the second
    // layer's input is h_t of the first — recurrent-dependent — so it
    // runs the fused per-step path.
    lstm1.precompute_inputs(x, steps);
    for (std::size_t t = 0; t < steps; ++t) {
      lstm1.step_pre(t);
      lstm2.step(lstm1.h());
    }
    const float* cur = lstm2.h();
    for (std::size_t l = 0; l < head.size(); ++l) {
      float* dst = (l + 1 == head.size()) ? out
                   : (l % 2 == 0)         ? scratch0.data()
                                          : scratch1.data();
      head[l].forward(cur, dst);
      cur = dst;
    }
  }
};

namespace detail {

template <typename V, typename T>
struct append_variant;
template <typename... Ts, typename T>
struct append_variant<std::variant<Ts...>, T> {
  using type = std::variant<Ts..., T>;
};

/// Template recursion over the hidden-size ladder: ladder<H> is the
/// variant of every SurrogateT from kMinHidden up to H (plus monostate
/// for the empty engine).
template <int H>
struct ladder {
  using type =
      typename append_variant<typename ladder<H - 1>::type,
                              SurrogateT<H>>::type;
};
template <>
struct ladder<kMinHidden> {
  using type = std::variant<std::monostate, SurrogateT<kMinHidden>>;
};

}  // namespace detail

/// variant<monostate, SurrogateT<2>, ..., SurrogateT<kMaxHidden>>.
using ModelVariant = typename detail::ladder<kMaxHidden>::type;

/// A compiled model ready to serve batch-1 predictions. Engines are
/// cheap to copy and single-threaded by design (the recurrent state and
/// head scratch live inside); clone one per thread for concurrent
/// serving.
class Engine {
 public:
  enum class Arch : std::uint8_t { kNone = 0, kLstmSurrogate = 1, kMlp = 2 };

  Engine() = default;

  /// Build from canonical surrogate weights: validates every extent,
  /// packs the matching SurrogateT<H>. Throws RuntimeError on any
  /// inconsistency (including hidden outside the ladder).
  [[nodiscard]] static Engine from_weights(LstmWeights w);

  /// Build a plain MLP engine from a packed dense chain.
  [[nodiscard]] static Engine from_mlp(std::vector<PackedDense> layers);

  [[nodiscard]] bool compiled() const noexcept {
    return arch_ != Arch::kNone;
  }
  [[nodiscard]] Arch arch() const noexcept { return arch_; }
  /// Recurrent hidden size (0 for MLP engines).
  [[nodiscard]] std::size_t hidden() const noexcept { return lw_.hidden; }
  /// Per-timestep input features (LSTM) or total input features (MLP).
  [[nodiscard]] std::size_t input_features() const noexcept;
  [[nodiscard]] std::size_t output_features() const noexcept;
  [[nodiscard]] std::size_t num_parameters() const noexcept;

  /// Canonical weights (empty unless arch() == kLstmSurrogate).
  [[nodiscard]] const LstmWeights& lstm_weights() const noexcept {
    return lw_;
  }
  [[nodiscard]] const std::vector<PackedDense>& mlp_layers() const noexcept {
    return mlp_;
  }

  /// Batch-1 forward. LSTM surrogates take a flattened [steps, in] window
  /// (steps = input.size() / in, validated); MLPs take [in]. `out` must
  /// hold output_features(). Allocation-free once the per-window-length
  /// scratch is warm (the first call with a longer window grows it); not
  /// thread-safe (recurrent state lives in the engine — clone per
  /// thread).
  void predict(std::span<const float> input, std::span<float> out);

  /// Binary checkpoint round-trip: load(save(x)) serves bit-identical
  /// predictions (test-asserted).
  void save(const std::string& path) const;
  [[nodiscard]] static Engine load(const std::string& path);

 private:
  Arch arch_ = Arch::kNone;
  LstmWeights lw_;                 ///< canonical form (kLstmSurrogate)
  ModelVariant model_;             ///< packed specialization
  std::vector<PackedDense> mlp_;   ///< dense chain (kMlp)
  std::vector<float> scratch0_, scratch1_;  ///< MLP activations
};

// Forward declarations of the training-side types compile() converts;
// keeps this header light for serving-only consumers.
}  // namespace sickle::infer

namespace sickle::ml {
class LstmModel;
class Sequential;
}  // namespace sickle::ml

namespace sickle::infer {

/// Compile a trained drag surrogate: validates the checkpoint's shapes
/// against its config, copies the weights into the packed layout, and
/// dispatches the matching variant. Traced as `infer.compile`.
[[nodiscard]] Engine compile(ml::LstmModel& model);

/// Compile a plain Dense/Activation stack (Dropout layers are identity
/// at inference and are folded away; anything else is rejected).
[[nodiscard]] Engine compile(ml::Sequential& mlp);

}  // namespace sickle::infer
