// Magnitude pruning for compiled LSTM surrogates: the neural-pruning
// candidate search (drop the smallest-magnitude hidden channel, re-measure
// RMS error on a held-out probe set, accept while under threshold) applied
// to infer::Engine. Each accepted step shrinks the dispatched variant by
// one rung of the hidden-size ladder.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "infer/engine.hpp"

namespace sickle::infer {

struct PruneOptions {
  /// Maximum probe RMS deviation from the *unpruned* engine's predictions
  /// a pruned engine may accumulate. The search stops at the first
  /// candidate exceeding it, so the returned engine always satisfies
  /// final_rms <= rms_threshold.
  double rms_threshold = 0.0;
  /// Hard floor on the hidden size (clamped to the variant ladder's
  /// kMinHidden).
  std::size_t min_hidden = static_cast<std::size_t>(kMinHidden);
  /// Stop after this many accepted channels; 0 = threshold-bounded only.
  /// Lets benches prune to an exact target size with a large threshold.
  std::size_t max_channels = 0;
};

/// One accepted pruning step. Channel indices refer to the hidden layout
/// *at the time of the step* (each step renumbers the survivors).
struct PruneStep {
  std::size_t channel1 = 0;  ///< pruned hidden channel of the first LSTM
  std::size_t channel2 = 0;  ///< pruned hidden channel of the second LSTM
  double rms = 0.0;  ///< probe RMS vs the original engine after this step
};

struct PruneReport {
  std::vector<PruneStep> accepted;
  std::size_t initial_hidden = 0;
  std::size_t final_hidden = 0;
  /// Probe RMS of the final engine vs the original (0 when nothing was
  /// pruned).
  double final_rms = 0.0;
  /// True when the search stopped because the best remaining candidate
  /// exceeded rms_threshold (as opposed to hitting min_hidden or
  /// max_channels).
  bool refused = false;
};

/// The smallest-magnitude hidden channel of each LSTM layer (mean |w|
/// over the channel's gate rows, recurrent column, bias gates, and its
/// fan-out into the next layer) — the next candidate prune() would try.
[[nodiscard]] std::pair<std::size_t, std::size_t> find_pruning_candidate(
    const Engine& engine);

/// Greedy magnitude pruning of a compiled LSTM surrogate. `probes` holds
/// `num_probes` held-out input windows, flattened back to back (each
/// window a whole number of timesteps of engine.input_features()
/// channels). Error is always measured against the predictions of the
/// engine as passed in, so thresholds compose: the final engine's probe
/// RMS never exceeds opts.rms_threshold. Gauges `infer.pruned_channels`
/// and `infer.engine.hidden` record the outcome when obs is enabled.
PruneReport prune(Engine& engine, std::span<const float> probes,
                  std::size_t num_probes, const PruneOptions& opts);

}  // namespace sickle::infer
