// Compile-time-sized inference kernels: the flat-storage building blocks
// the surrogate variant ladder (engine.hpp) is assembled from.
//
// Everything here is allocation-free after construction and built around
// two ideas the training path cannot use:
//
//  1. Vector re-association. The training matmuls accumulate floats in
//     strict left-to-right order (bit-reproducibility across thread
//     counts), which the compiler must not vectorize. The inference
//     kernels carry explicit `#pragma omp simd reduction` annotations
//     licensing reordered sums, and the wide input layer batches up to
//     four timesteps per weight-column sweep so each weight is streamed
//     once per block instead of once per timestep.
//  2. Batched polynomial transcendentals. libm's expf/tanhf are called
//     once per gate scalar on the training path and dominate small-model
//     forwards. Here all 4H gate activations of a timestep are computed
//     as array operations over a degree-5 polynomial exp (Cephes
//     coefficients, absolute error ~1e-7) that vectorizes cleanly.
//
// Both change float results only at the ~1e-7 level; the engine's parity
// with the training forward is asserted at 1e-6 RMS in tests/test_infer.cpp.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sickle::infer {

/// Dot product with vector re-association.
[[nodiscard]] inline float dot(const float* a, const float* b,
                               std::size_t n) noexcept {
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Branch-free expf for one lane of a vectorized loop: Cephes-style
/// degree-5 polynomial on the reduced range with two-part ln2, scaled by
/// 2^k through exponent-bit assembly. Absolute error ~1e-7 relative over
/// the clamped domain; round-to-nearest reduction via the 1.5*2^23 magic
/// constant (simd-friendly, no branches).
[[nodiscard]] inline float exp_lane(float v) noexcept {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kC1 = 0.693359375f;           // ln2 high part
  constexpr float kC2 = -2.12194440e-4f;        // ln2 low part
  constexpr float kMagic = 12582912.0f;         // 1.5 * 2^23
  v = v > 88.0f ? 88.0f : v;
  v = v < -87.0f ? -87.0f : v;
  const float t = v * kLog2e + kMagic;
  const float k = t - kMagic;  // round-to-nearest(v * log2e)
  const float x = (v - k * kC1) - k * kC2;
  float p = 1.9875691500e-4f;
  p = p * x + 1.3981999507e-3f;
  p = p * x + 8.3334519073e-3f;
  p = p * x + 4.1665795894e-2f;
  p = p * x + 1.6666665459e-1f;
  p = p * x + 5.0000001201e-1f;
  p = p * x * x + x + 1.0f;
  const auto bits = std::bit_cast<std::uint32_t>(t);  // low bits hold k
  const std::uint32_t scale = (bits + 127u) << 23;    // 2^k as a float
  return p * std::bit_cast<float>(scale);
}

/// x[i] = exp(x[i]) over an array, one vectorized pass.
inline void exp_inplace(float* x, std::size_t n) noexcept {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) x[i] = exp_lane(x[i]);
}

/// x[i] = sigmoid(x[i]) = 1 / (1 + exp(-x[i])).
inline void sigmoid_inplace(float* x, std::size_t n) noexcept {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0f / (1.0f + exp_lane(-x[i]));
  }
}

/// x[i] = tanh(x[i]) = 1 - 2 / (exp(2 x[i]) + 1). The subtraction form
/// keeps the absolute error at the exp level (~1e-7) everywhere,
/// including the saturated tails.
inline void tanh_inplace(float* x, std::size_t n) noexcept {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0f - 2.0f / (exp_lane(2.0f * x[i]) + 1.0f);
  }
}

/// Scalar reference sigmoid (libm), used where bit-parity with the
/// training path matters more than throughput.
[[nodiscard]] inline float sigmoidf(float x) noexcept {
  return 1.0f / (1.0f + std::exp(-x));
}

/// Activation kinds the packed dense layer supports; mirrors
/// ml::Activation plus an explicit identity for un-activated heads.
enum class Act : std::uint8_t {
  kIdentity = 0,
  kRelu = 1,
  kTanh = 2,
  kGelu = 3,
  kSigmoid = 4,
};

/// Elementwise activation, formulas matching ml::ActivationLayer (GELU is
/// the same tanh approximation with the same float constants; tanh and
/// sigmoid go through the batched polynomial exp).
inline void apply_act(Act act, float* x, std::size_t n) noexcept {
  switch (act) {
    case Act::kIdentity:
      break;
    case Act::kRelu:
      for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
      break;
    case Act::kTanh:
      tanh_inplace(x, n);
      break;
    case Act::kGelu:
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) {
        const float c = 0.7978845608f;  // sqrt(2/pi), as in layers_basic
        const float u = c * (x[i] + 0.044715f * x[i] * x[i] * x[i]);
        x[i] = x[i] * (1.0f - 1.0f / (exp_lane(2.0f * u) + 1.0f));
      }
      break;
    case Act::kSigmoid:
      sigmoid_inplace(x, n);
      break;
  }
}

/// Runtime-extent packed dense layer: y = x W^T + b then activation,
/// W row-major [out, in] exactly like ml::Dense. Used for MLP engines
/// and the surrogate head, whose widths decouple from the recurrent
/// hidden size once pruning shrinks it.
struct PackedDense {
  std::size_t in = 0, out = 0;
  std::vector<float> w;  ///< [out * in]
  std::vector<float> b;  ///< [out]; empty = no bias
  Act act = Act::kIdentity;

  void forward(const float* x, float* y) const noexcept {
    for (std::size_t o = 0; o < out; ++o) {
      y[o] = dot(x, w.data() + o * in, in) + (b.empty() ? 0.0f : b[o]);
    }
    apply_act(act, y, out);
  }
};

/// One LSTM layer with a statically-known hidden extent H: the recurrent
/// state and the gate scratch live in flat std::arrays sized at compile
/// time, so the update loops have constant trip counts and the state
/// stays in L1 across timesteps. The input extent stays dynamic — drag
/// surrogates see 2*ns sensor channels, which varies per case.
///
/// Weights are stored COLUMN-major: wt[j * 4H + r] holds input j's
/// coefficient for gate row r, with the recurrent block appended as
/// columns [in, in+H). Every matvec is then an axpy sweep over columns —
/// gates[0..4H) += column_j * z_j — whose inner loop is the compile-time
/// 4H gate dimension. That kills the per-row horizontal reductions of
/// the dot-product form, which dominate at LSTM row lengths (a [4H=64,
/// H=16] recurrent update measures ~20x faster column-major: 64
/// 16-float dots are almost all reduction latency, 16 64-float axpys
/// are almost all FMA throughput).
///
/// Semantics replicate ml::Lstm: gate order i|f|g|o, zero initial state,
///   c = f*c_prev + i*g;  h = o*tanh(c)
/// with sums re-associated and activations through the polynomial exp
/// (both ~1e-7 deviations; parity is asserted at the engine level).
template <int H>
struct LstmLayerT {
  static_assert(H >= 1);
  static constexpr int R = 4 * H;  ///< gate rows
  std::vector<float> wt;  ///< column-major [in + H, 4H]; cols [in,in+H) = w_h
  std::array<float, R> bias{};
  std::size_t in = 0;

  std::array<float, H> hst{};  ///< hidden state h_t
  std::array<float, H> c{};
  std::array<float, R> gates{};
  std::array<float, H> h_tanh{};  ///< tanh(c) scratch

  /// Transpose row-major w_x [4H, in] / w_h [4H, H] into the fused
  /// column-major layout.
  void pack(std::size_t input_width, const float* w_x, const float* w_h,
            const float* b) {
    in = input_width;
    wt.assign((in + H) * R, 0.0f);
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      for (std::size_t j = 0; j < in; ++j) {
        wt[j * R + r] = w_x[r * in + j];
      }
      for (std::size_t j = 0; j < static_cast<std::size_t>(H); ++j) {
        wt[(in + j) * R + r] = w_h[r * H + j];
      }
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      bias[r] = b[r];
    }
  }

  [[nodiscard]] const float* h() const noexcept { return hst.data(); }

  void reset() noexcept {
    hst.fill(0.0f);
    c.fill(0.0f);
  }

  void step(const float* x) noexcept {
    float acc[R];
    for (int k = 0; k < R; ++k) acc[k] = bias[k];
    axpy_cols(acc, wt.data(), x, in);
    axpy_cols(acc, wt.data() + in * R, hst.data(),
              static_cast<std::size_t>(H));
    std::copy(acc, acc + R, gates.data());
    finish_step();
  }

  /// Input-weight contributions for a whole [steps, in] window in one
  /// pass: gx[t * 4H + r] = w_x row r . x_t. Each weight column is
  /// loaded once for up to four timesteps instead of once per timestep,
  /// so the sweep runs at FMA throughput; the sequential recurrent loop
  /// then touches only the small [H, 4H] block. This is the wide-input
  /// layer's fast path (drag surrogates: in = 2*ns sensor channels
  /// >> H).
  void precompute_inputs(const float* x, std::size_t steps) {
    if (gx.size() < steps * R) gx.resize(steps * R);
    std::size_t t = 0;
    for (; t + 4 <= steps; t += 4) {
      pre_block<4>(x + t * in, gx.data() + t * R);
    }
    switch (steps - t) {
      case 3: pre_block<3>(x + t * in, gx.data() + t * R); break;
      case 2: pre_block<2>(x + t * in, gx.data() + t * R); break;
      case 1: pre_block<1>(x + t * in, gx.data() + t * R); break;
      default: break;
    }
  }

  /// One timestep consuming precompute_inputs' result: only the
  /// recurrent columns are swept inside the sequential loop.
  void step_pre(std::size_t t) noexcept {
    float acc[R];
    const float* gxt = gx.data() + t * R;
    for (int k = 0; k < R; ++k) acc[k] = bias[k] + gxt[k];
    axpy_cols(acc, wt.data() + in * R, hst.data(),
              static_cast<std::size_t>(H));
    std::copy(acc, acc + R, gates.data());
    finish_step();
  }

 private:
  std::vector<float> gx;  ///< [steps, 4H] input-gate pre-activations

  /// acc[0..4H) += sum_j cols[j] * z[j]; the accumulators live in
  /// registers across the whole sweep (4H floats = a handful of vector
  /// registers).
  static void axpy_cols(float* acc, const float* cols, const float* z,
                        std::size_t n) noexcept {
    for (std::size_t j = 0; j < n; ++j) {
      const float zj = z[j];
      const float* wc = cols + j * R;
#pragma omp simd
      for (int k = 0; k < R; ++k) acc[k] += wc[k] * zj;
    }
  }

  /// T timesteps' input contributions in one weight sweep: T*4H
  /// accumulators (T <= 4 keeps them in registers), each column loaded
  /// once and fused against T broadcast input scalars.
  template <int T>
  void pre_block(const float* x, float* out) noexcept {
    float acc[T][R] = {};
    for (std::size_t j = 0; j < in; ++j) {
      const float* wc = wt.data() + j * R;
      for (int tt = 0; tt < T; ++tt) {
        const float xt = x[static_cast<std::size_t>(tt) * in + j];
#pragma omp simd
        for (int k = 0; k < R; ++k) acc[tt][k] += wc[k] * xt;
      }
    }
    for (int tt = 0; tt < T; ++tt) {
      std::copy(acc[tt], acc[tt] + R, out + tt * R);
    }
  }

  /// Gate activations and the c/h update shared by both step flavors.
  void finish_step() noexcept {
    float* ig = gates.data();
    float* fg = ig + H;
    float* gg = fg + H;
    float* og = gg + H;
    sigmoid_inplace(ig, 2 * H);  // i and f are adjacent segments
    tanh_inplace(gg, H);
    sigmoid_inplace(og, H);
#pragma omp simd
    for (std::size_t j = 0; j < static_cast<std::size_t>(H); ++j) {
      c[j] = fg[j] * c[j] + ig[j] * gg[j];
      h_tanh[j] = c[j];
    }
    tanh_inplace(h_tanh.data(), H);
#pragma omp simd
    for (std::size_t j = 0; j < static_cast<std::size_t>(H); ++j) {
      hst[j] = og[j] * h_tanh[j];
    }
  }
};

}  // namespace sickle::infer
