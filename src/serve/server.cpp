#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <inttypes.h>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"

namespace sickle::serve {

namespace {

/// sample_hash travels as a string because JSON numbers are doubles and a
/// 64-bit hash does not survive the round trip. The format matches
/// sickle_train's stdout ("%016PRIx64") so the e2e harness can diff the
/// two without normalization.
std::string hash_hex(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

Json error_response(const std::string& code, const std::string& what) {
  Json resp = Json::object();
  resp.set("ok", false);
  resp.set("code", code);
  resp.set("error", what);
  return resp;
}

void send_all(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client gone; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

ServeOptions serve_options_from_config(const Config& cfg) {
  ServeOptions o;
  o.host = cfg.get_str("server", "host", o.host);
  o.port = static_cast<std::uint16_t>(cfg.get_int("server", "port", 0));
  o.session.max_concurrent_cases = static_cast<std::size_t>(
      cfg.get_int("server", "max_concurrent_cases", 1));
  o.session.queue_capacity =
      static_cast<std::size_t>(cfg.get_int("server", "queue_capacity", 16));
  o.session.shared_block_cache =
      cfg.get_bool("server", "shared_block_cache", true);
  return o;
}

struct Server::Impl {
  explicit Impl(ServeOptions o) : opts(std::move(o)) {}

  struct Conn {
    int fd = -1;
    std::thread th;
  };

  ServeOptions opts;
  std::unique_ptr<CaseSession> session;

  int listen_fd = -1;
  std::thread accept_thread;

  std::mutex conns_mu;
  std::vector<std::unique_ptr<Conn>> conns;

  std::mutex handles_mu;
  std::map<std::uint64_t, CaseHandle> handles;
  std::atomic<std::size_t> submitted{0};

  std::mutex lifecycle_mu;
  std::condition_variable lifecycle_cv;
  bool shutdown_requested = false;
  std::atomic<bool> stopping{false};
  bool stopped = false;

  // ---------------------------------------------------------------- verbs

  [[nodiscard]] CaseHandle find_handle(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(handles_mu);
    auto it = handles.find(id);
    return it == handles.end() ? CaseHandle() : it->second;
  }

  /// Parse the id operand; returns an invalid handle + fills `err` when
  /// the id is missing or unknown.
  [[nodiscard]] CaseHandle handle_for(const Json& req, Json* err) {
    const Json* id = req.get("id");
    if (id == nullptr || id->type() != Json::Type::kNumber) {
      *err = error_response("protocol", "missing numeric 'id'");
      return {};
    }
    CaseHandle h = find_handle(static_cast<std::uint64_t>(id->as_number()));
    if (!h.valid()) {
      *err = error_response("unknown_id",
                            "no case with id " +
                                std::to_string(static_cast<std::uint64_t>(
                                    id->as_number())));
    }
    return h;
  }

  Json do_submit(const Json& req) {
    const Json* cfg_text = req.get("config");
    if (cfg_text == nullptr || cfg_text->type() != Json::Type::kString) {
      return error_response("protocol", "missing string 'config'");
    }
    try {
      const Config cfg = Config::parse(cfg_text->as_string());
      CaseConfig cc = case_from_config(cfg);
      ProducerBundle bundle = make_dataset_producer(
          dataset_label_from_config(cfg),
          static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42)),
          dataset_scale_from_config(cfg));
      CaseHandle h = session->submit(std::move(bundle), std::move(cc));
      {
        std::lock_guard<std::mutex> lk(handles_mu);
        handles.emplace(h.id(), h);
      }
      submitted.fetch_add(1, std::memory_order_relaxed);
      Json resp = Json::object();
      resp.set("ok", true);
      resp.set("id", static_cast<double>(h.id()));
      return resp;
    } catch (const ConfigError& e) {
      // The whole point of validate(): EVERY issue in one round trip.
      Json resp = error_response("config", e.what());
      Json issues = Json::array();
      for (const auto& issue : e.issues()) {
        Json j = Json::object();
        j.set("field", issue.field);
        j.set("message", issue.message);
        if (!issue.hint.empty()) j.set("hint", issue.hint);
        issues.push(std::move(j));
      }
      resp.set("issues", std::move(issues));
      return resp;
    } catch (const QueueFullError& e) {
      return error_response("queue_full", e.what());
    } catch (const std::exception& e) {
      // Config::parse syntax errors, unknown dataset labels, ...
      return error_response("config", e.what());
    }
  }

  Json do_status(const Json& req) {
    Json err;
    CaseHandle h = handle_for(req, &err);
    if (!h.valid()) return err;
    const CaseStatus s = h.status();
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("id", static_cast<double>(h.id()));
    resp.set("state", to_string(s.state));
    resp.set("progress_done", static_cast<double>(s.progress_done));
    resp.set("progress_total", static_cast<double>(s.progress_total));
    if (s.state == CaseState::kFailed) {
      resp.set("code", to_string(s.error_code));
      resp.set("error", s.error);
    }
    return resp;
  }

  Json do_result(const Json& req) {
    Json err;
    CaseHandle h = handle_for(req, &err);
    if (!h.valid()) return err;
    try {
      const CaseReport& r = h.wait();  // blocks this connection thread only
      Json resp = Json::object();
      resp.set("ok", true);
      resp.set("id", static_cast<double>(h.id()));
      resp.set("state", "done");
      resp.set("sample_hash", hash_hex(r.sample_hash));
      resp.set("sampled_points", static_cast<double>(r.sampled_points));
      resp.set("store_bytes", static_cast<double>(r.store_bytes));
      resp.set("test_loss", r.train.test_loss);
      resp.set("final_train_loss", r.train.final_train_loss);
      resp.set("train_seconds", r.train.seconds);
      Json metrics = Json::object();
      for (const auto& [k, v] : r.metrics) metrics.set(k, v);
      resp.set("metrics", std::move(metrics));
      return resp;
    } catch (const CancelledError& e) {
      Json resp = error_response("cancelled", e.what());
      resp.set("id", static_cast<double>(h.id()));
      return resp;
    } catch (const CaseError& e) {
      Json resp = error_response(to_string(e.code()), e.what());
      resp.set("id", static_cast<double>(h.id()));
      return resp;
    }
  }

  Json do_cancel(const Json& req) {
    Json err;
    CaseHandle h = handle_for(req, &err);
    if (!h.valid()) return err;
    const bool cancelled = h.cancel();
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("id", static_cast<double>(h.id()));
    resp.set("cancelled", cancelled);
    return resp;
  }

  Json do_metrics() {
    // MetricsRegistry::to_json() pretty-prints across lines; the NDJSON
    // frame is rebuilt single-line from the snapshot instead.
    Json metrics = Json::object();
    for (const auto& [k, v] : obs::MetricsRegistry::global().snapshot()) {
      metrics.set(k, v);
    }
    metrics.set("serve.cases_submitted",
                static_cast<double>(submitted.load(std::memory_order_relaxed)));
    metrics.set("serve.cases_queued", static_cast<double>(session->queued()));
    metrics.set("serve.cases_running",
                static_cast<double>(session->running()));
    const store::CacheStats cache = CaseSession::shared_cache_stats();
    metrics.set("serve.shared_cache.hits", static_cast<double>(cache.hits));
    metrics.set("serve.shared_cache.misses",
                static_cast<double>(cache.misses));
    metrics.set("serve.shared_cache.resident_bytes",
                static_cast<double>(cache.resident_bytes));
    Json resp = Json::object();
    resp.set("ok", true);
    resp.set("metrics", std::move(metrics));
    return resp;
  }

  /// One request line -> one response line. Returns false when the
  /// connection should close (shutdown verb).
  bool handle_line(int fd, const std::string& line) {
    Json resp;
    bool keep_open = true;
    try {
      const Json req = Json::parse(line);
      const Json* verb = req.get("verb");
      if (!req.is_object() || verb == nullptr ||
          verb->type() != Json::Type::kString) {
        resp = error_response("protocol", "request needs a string 'verb'");
      } else if (verb->as_string() == "submit") {
        resp = do_submit(req);
      } else if (verb->as_string() == "status") {
        resp = do_status(req);
      } else if (verb->as_string() == "result") {
        resp = do_result(req);
      } else if (verb->as_string() == "cancel") {
        resp = do_cancel(req);
      } else if (verb->as_string() == "metrics") {
        resp = do_metrics();
      } else if (verb->as_string() == "shutdown") {
        resp = Json::object();
        resp.set("ok", true);
        keep_open = false;
        // Only flag it: wait() returns and the OWNER calls stop(). stop()
        // joins this very thread, so it must never run from here.
        {
          std::lock_guard<std::mutex> lk(lifecycle_mu);
          shutdown_requested = true;
        }
        lifecycle_cv.notify_all();
      } else {
        resp = error_response("protocol",
                              "unknown verb: " + verb->as_string());
      }
    } catch (const std::exception& e) {
      resp = error_response("protocol", e.what());
    }
    send_all(fd, resp.dump());
    return keep_open;
  }

  void connection_loop(Conn* conn) {
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open && !stopping.load(std::memory_order_relaxed)) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buf.find('\n', start);
           nl != std::string::npos && open;
           nl = buf.find('\n', start)) {
        std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        if (!trim(line).empty()) open = handle_line(conn->fd, line);
      }
      buf.erase(0, start);
    }
    // Close under the registry lock so stop() can't shutdown() a reused
    // fd number.
    std::lock_guard<std::mutex> lk(conns_mu);
    ::close(conn->fd);
    conn->fd = -1;
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (stopping.load(std::memory_order_relaxed)) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listen socket is gone
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      Conn* raw = conn.get();
      {
        std::lock_guard<std::mutex> lk(conns_mu);
        conns.push_back(std::move(conn));
      }
      raw->th = std::thread([this, raw] { connection_loop(raw); });
    }
  }
};

Server::Server(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() { stop(); }

void Server::start() {
  Impl& s = *impl_;
  SICKLE_CHECK_MSG(s.listen_fd < 0, "Server::start called twice");
  s.session = std::make_unique<CaseSession>(s.opts.session);

  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) throw RuntimeError("serve: socket() failed");
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.opts.port);
  if (::inet_pton(AF_INET, s.opts.host.c_str(), &addr.sin_addr) != 1) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw RuntimeError("serve: bad host address: " + s.opts.host);
  }
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw RuntimeError("serve: bind " + s.opts.host + ":" +
                       std::to_string(s.opts.port) + " failed: " + what);
  }
  if (::listen(s.listen_fd, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw RuntimeError("serve: listen failed: " + what);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  s.accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void Server::wait() {
  Impl& s = *impl_;
  std::unique_lock<std::mutex> lk(s.lifecycle_mu);
  s.lifecycle_cv.wait(lk, [&] { return s.shutdown_requested; });
}

void Server::request_stop() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.lifecycle_mu);
    s.shutdown_requested = true;
  }
  s.lifecycle_cv.notify_all();
}

void Server::stop() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.lifecycle_mu);
    if (s.stopped) return;
    s.stopped = true;
    s.shutdown_requested = true;
  }
  s.lifecycle_cv.notify_all();
  s.stopping.store(true, std::memory_order_relaxed);

  // 1. Stop accepting: shutdown() unblocks accept(), then join.
  if (s.listen_fd >= 0) {
    ::shutdown(s.listen_fd, SHUT_RDWR);
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  if (s.accept_thread.joinable()) s.accept_thread.join();

  // 2. Cancel every case so connection threads blocked in result-wait()
  //    unblock with CancelledError instead of deadlocking the joins below.
  {
    std::lock_guard<std::mutex> lk(s.handles_mu);
    for (auto& [id, h] : s.handles) {
      const CaseStatus st = h.status();
      if (st.state != CaseState::kDone && st.state != CaseState::kFailed &&
          st.state != CaseState::kCancelled) {
        h.cancel();
      }
    }
  }

  // 3. Unblock reads and join every connection thread.
  {
    std::lock_guard<std::mutex> lk(s.conns_mu);
    for (auto& conn : s.conns) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : s.conns) {  // no new conns: accept loop is gone
    if (conn->th.joinable()) conn->th.join();
  }

  // 4. Tear down the session (joins its runner threads).
  s.session.reset();
}

std::size_t Server::cases_submitted() const {
  return impl_->submitted.load(std::memory_order_relaxed);
}

}  // namespace sickle::serve
