/// @file json.hpp
/// @brief Minimal JSON value for the sickle-serve NDJSON protocol: parse
/// one request line, build one single-line response. Hand-rolled (no new
/// dependencies), covering exactly the JSON subset the protocol uses —
/// null, bool, finite numbers, strings with standard escapes, objects,
/// arrays. Insertion order of object keys is preserved so responses are
/// stable for tests and humans. Not a general-purpose library: numbers
/// are doubles (protocol ids stay well under 2^53) and dump() never
/// pretty-prints — NDJSON frames must stay on one line.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace sickle::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool b) noexcept : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double n) noexcept : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  /// Parse one complete JSON document; trailing non-space is an error.
  /// Throws RuntimeError with a position on malformed input.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept {
    return type_ == Type::kNull;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors: throw RuntimeError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;  ///< array

  /// Object field by key; nullptr when absent (or not an object).
  [[nodiscard]] const Json* get(const std::string& key) const;

  /// Object field insert-or-replace (first-set order is kept on dump).
  Json& set(const std::string& key, Json value);
  /// Array append.
  Json& push(Json value);

  /// Single-line canonical serialization.
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> fields_;  ///< kObject
  std::vector<Json> items_;                           ///< kArray
};

}  // namespace sickle::serve
