/// @file server.hpp
/// @brief sickle-serve: a TCP daemon fronting CaseSession with a
/// newline-delimited-JSON protocol (one request object per line, one
/// response object per line). Protocol reference: docs/SERVE.md.
///
/// Verbs:
///   {"verb":"submit","config":"<inline case YAML>"}
///       -> {"ok":true,"id":N}
///       -> {"ok":false,"code":"config","error":...,"issues":[...]}
///          (EVERY validation issue at once, from ConfigError)
///       -> {"ok":false,"code":"queue_full","error":...}
///   {"verb":"status","id":N}   -> state + per-stage progress, never blocks
///   {"verb":"result","id":N}   -> blocks until terminal; report or error
///   {"verb":"cancel","id":N}   -> {"ok":true,"cancelled":bool}
///   {"verb":"metrics"}         -> MetricsRegistry::global() snapshot
///   {"verb":"shutdown"}        -> ack, then the daemon drains and exits
///
/// Concurrency: one accept loop, one thread per connection, all case
/// execution inside the embedded CaseSession (admission control =
/// server.max_concurrent_cases runners + server.queue_capacity FIFO
/// slots). Hand-rolled on POSIX sockets — no new dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "sickle/session.hpp"

namespace sickle::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()
  /// — how the bench and e2e harnesses avoid collisions).
  std::uint16_t port = 0;
  SessionOptions session;
};

/// Map the `server:` config section (port, host, max_concurrent_cases,
/// queue_capacity, shared_block_cache) onto ServeOptions.
[[nodiscard]] ServeOptions serve_options_from_config(const Config& cfg);

class Server {
 public:
  explicit Server(ServeOptions opts = {});
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. Throws RuntimeError when the
  /// address is unavailable.
  void start();

  /// The bound port (resolves an ephemeral request). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block until a client sends {"verb":"shutdown"} or request_stop() is
  /// called (the daemon's SIGTERM handler does the latter).
  void wait();

  /// Unblock wait() without tearing anything down (signal-handler safe
  /// apart from the condition variable notify, so the daemon calls it
  /// from its main loop after the sig_atomic_t flag flips).
  void request_stop();

  /// Full teardown: close the listening socket, cancel every in-flight
  /// case, unblock and join all connection threads. Idempotent.
  void stop();

  /// Cases submitted over the lifetime of this server.
  [[nodiscard]] std::size_t cases_submitted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace sickle::serve
