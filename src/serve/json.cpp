#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sickle::serve {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw RuntimeError("json parse error at offset " + std::to_string(pos) +
                     ": " + what);
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() {
    if (pos >= text.size()) fail(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos, std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  Json parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos >= text.size()) fail(pos, "unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) fail(pos, "truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail(pos - 1, "bad \\u hex digit");
              }
            }
            // UTF-8 encode the BMP code point (the protocol never needs
            // surrogate pairs; reject them rather than mis-encode).
            if (cp >= 0xD800 && cp <= 0xDFFF) {
              fail(pos, "surrogate \\u escapes are unsupported");
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: fail(pos - 1, "unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string tok = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || !std::isfinite(v)) {
      fail(start, "bad number: " + tok);
    }
    return Json(v);
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      for (;;) {
        skip_ws();
        Json key = parse_string();
        skip_ws();
        expect(':');
        obj.set(key.as_string(), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      for (;;) {
        arr.push(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return parse_string();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return parse_number();
    }
    fail(pos, "unexpected character");
  }
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  // Integers (the common case: ids, counts) print without an exponent or
  // trailing zeros; everything else round-trips via %.17g.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) fail(p.pos, "trailing content");
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw RuntimeError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw RuntimeError("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw RuntimeError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw RuntimeError("json: not an array");
  return items_;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) throw RuntimeError("json: not an object");
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) throw RuntimeError("json: not an array");
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(num_, out); break;
    case Type::kString: dump_string(str_, out); break;
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
  }
}

}  // namespace sickle::serve
