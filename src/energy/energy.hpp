// Energy accounting — the repo's substitute for Cray PM counters.
//
// The paper measures sampling/training energy with Frontier's power
// management counters. Offline we model it: instrumented code reports the
// work it performs (FLOPs, bytes moved, wall seconds) to an EnergyCounter,
// and an EnergyModel converts the tallies to joules:
//
//   E = e_flop * FLOPs + e_byte * bytes + P_static * seconds
//
// The defaults encode the relationship the paper leans on (Kogge & Shalf;
// Kestor et al.): moving a double across the memory system costs on the
// order of 100x computing with it. Absolute joules are therefore
// model-dependent, but *ratios between runs* — the quantity behind the
// paper's 38x claim — depend only on relative data volume and time, which
// we measure directly.
#pragma once

#include <cstddef>
#include <string>

namespace sickle::energy {

/// Conversion constants (defaults: exascale-node-era literature values).
struct EnergyModel {
  double joules_per_flop = 20e-12;   ///< ~20 pJ per double-precision flop
  double joules_per_byte = 2.5e-9;   ///< DRAM + fabric movement per byte
  double static_watts = 150.0;       ///< apportioned static/idle node power

  /// Node roofline used to project run time onto target hardware: this
  /// repo executes on a slow scalar host, so charging static power against
  /// *host* wall time would swamp the work terms. Effective (not peak)
  /// MI250X-node-class rates.
  double node_flops_per_second = 5e12;
  double node_bytes_per_second = 5e10;

  [[nodiscard]] double joules(double flops, double bytes,
                              double seconds) const noexcept {
    return joules_per_flop * flops + joules_per_byte * bytes +
           static_watts * seconds;
  }

  /// Time this work would take on the modeled node (roofline max).
  [[nodiscard]] double node_seconds(double flops,
                                    double bytes) const noexcept {
    const double t_flops = flops / node_flops_per_second;
    const double t_bytes = bytes / node_bytes_per_second;
    return t_flops > t_bytes ? t_flops : t_bytes;
  }

  /// Energy with static power charged against projected node time instead
  /// of measured host seconds — the figure-of-merit every energy
  /// experiment reports (EXPERIMENTS.md).
  [[nodiscard]] double projected_joules(double flops,
                                        double bytes) const noexcept {
    return joules(flops, bytes, node_seconds(flops, bytes));
  }
};

/// Accumulates work tallies; cheap enough to update from hot loops at
/// region granularity (callers batch their counts).
class EnergyCounter {
 public:
  void add_flops(double n) noexcept { flops_ += n; }
  void add_bytes(double n) noexcept { bytes_ += n; }
  void add_seconds(double s) noexcept { seconds_ += s; }
  void merge(const EnergyCounter& other) noexcept {
    flops_ += other.flops_;
    bytes_ += other.bytes_;
    seconds_ += other.seconds_;
  }
  void reset() noexcept { flops_ = bytes_ = seconds_ = 0.0; }

  [[nodiscard]] double flops() const noexcept { return flops_; }
  [[nodiscard]] double bytes() const noexcept { return bytes_; }
  [[nodiscard]] double seconds() const noexcept { return seconds_; }

  [[nodiscard]] double joules(const EnergyModel& model = {}) const noexcept {
    return model.joules(flops_, bytes_, seconds_);
  }
  [[nodiscard]] double kilojoules(const EnergyModel& model = {}) const noexcept {
    return joules(model) * 1e-3;
  }

  /// Node-projected energy (static power x roofline node time); see
  /// EnergyModel::projected_joules.
  [[nodiscard]] double projected_joules(
      const EnergyModel& model = {}) const noexcept {
    return model.projected_joules(flops_, bytes_);
  }
  [[nodiscard]] double projected_kilojoules(
      const EnergyModel& model = {}) const noexcept {
    return projected_joules(model) * 1e-3;
  }

  /// "Total Energy Consumed: X kJ" — the string the paper greps from logs.
  [[nodiscard]] std::string report(const EnergyModel& model = {}) const;

 private:
  double flops_ = 0.0;
  double bytes_ = 0.0;
  double seconds_ = 0.0;
};

}  // namespace sickle::energy
