#include "energy/energy.hpp"

#include <sstream>

namespace sickle::energy {

std::string EnergyCounter::report(const EnergyModel& model) const {
  std::ostringstream os;
  os.precision(4);
  os << "Total Energy Consumed: " << kilojoules(model) << " kJ"
     << " (flops=" << flops_ << ", bytes=" << bytes_
     << ", seconds=" << seconds_ << ")";
  return os.str();
}

}  // namespace sickle::energy
